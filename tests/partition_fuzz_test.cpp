// Randomized property tests: every partitioner in the zoo must uphold its
// invariants on arbitrary (valid) workloads and capacity vectors — including
// deep refinement, anisotropic extents, heavily skewed and near-zero
// capacities, and the single-box / single-rank degenerate cases.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>

#include "audit/validator.hpp"
#include "geom/box_algebra.hpp"
#include "partition/zoo.hpp"
#include "util/rng.hpp"

namespace ssamr {
namespace {

/// A random, valid composite workload: disjoint same-level boxes laid out
/// on a jittered lattice, up to three refinement levels deep, with
/// anisotropic 3-D extents.  Every 11th trial degenerates to a single box.
BoxList random_workload(Rng& rng, int trial) {
  if (trial % 11 == 7) {
    BoxList out;
    out.push_back(Box::from_extent(
        IntVec(0, 0, 0),
        IntVec(8 + 4 * rng.uniform_int(0, 8), 4 + 4 * rng.uniform_int(0, 3),
               4 + 4 * rng.uniform_int(0, 2)),
        0));
    return out;
  }
  BoxList out;
  const coord_t cell = 4 + 4 * rng.uniform_int(0, 2);  // 4, 8 or 12
  const coord_t nx = rng.uniform_int(2, 5);
  const coord_t ny = rng.uniform_int(1, 4);
  for (coord_t i = 0; i < nx; ++i)
    for (coord_t j = 0; j < ny; ++j) {
      if (rng.uniform() < 0.2) continue;  // holes
      // Anisotropic in all three directions.
      const IntVec ext(cell + 2 * rng.uniform_int(0, 3),
                       cell + 2 * rng.uniform_int(0, 2),
                       cell + 2 * rng.uniform_int(0, 3));
      out.push_back(Box::from_extent(IntVec(i * 40, j * 40, 0), ext, 0));
      if (rng.uniform() < 0.5) {
        // A refined child inside (level-1 coordinates are 2x the parent's).
        const IntVec child(ext.x, ext.y, cell);
        out.push_back(
            Box::from_extent(IntVec(i * 80, j * 80, 0), child, 1));
        if (rng.uniform() < 0.4)
          // And a grandchild: three levels of nesting in one lattice cell.
          out.push_back(Box::from_extent(
              IntVec(i * 160, j * 160, 0),
              IntVec(child.x, cell, cell), 2));
      }
    }
  if (out.empty())
    out.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 0));
  return out;
}

/// Random capacity vectors covering the hostile corners: a single rank,
/// a near-zero straggler, and heavy skew (one rank ~100x the others).
std::vector<real_t> random_capacities(Rng& rng, int trial) {
  if (trial % 9 == 4) return {1.0};  // single rank
  const int n = static_cast<int>(rng.uniform_int(1, 9));
  std::vector<real_t> caps(static_cast<std::size_t>(n));
  for (auto& c : caps) c = rng.uniform(0.05, 1.0);
  if (n > 1) {
    const real_t shape = rng.uniform();
    if (shape < 0.25)
      caps[0] = 1e-7;  // near-zero: effectively no share
    else if (shape < 0.5)
      caps[0] = 100.0;  // heavy skew: one rank dwarfs the rest
  }
  real_t sum = 0;
  for (real_t c : caps) sum += c;
  for (auto& c : caps) c /= sum;
  return caps;
}

class PartitionerFuzzTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Partitioner> make() const {
    return make_partitioner(GetParam());
  }
};

TEST_P(PartitionerFuzzTest, InvariantsOnRandomWorkloads) {
  auto partitioner = make();
  Rng rng(0xf00d + std::hash<std::string>{}(GetParam()));
  const WorkModel work;
  for (int trial = 0; trial < 50; ++trial) {
    const BoxList boxes = random_workload(rng, trial);
    const auto caps = random_capacities(rng, trial);
    const PartitionResult r = partitioner->partition(boxes, caps, work);

    // Cell conservation.
    std::int64_t cells = 0;
    for (const auto& a : r.assignments) {
      cells += a.box.cells();
      ASSERT_GE(a.owner, 0);
      ASSERT_LT(a.owner, static_cast<rank_t>(caps.size()));
    }
    ASSERT_EQ(cells, boxes.total_cells()) << "trial " << trial;

    // Work bookkeeping.
    real_t assigned = 0;
    for (real_t w : r.assigned_work) {
      ASSERT_GE(w, 0.0);
      assigned += w;
    }
    ASSERT_NEAR(assigned, total_work(boxes, work),
                total_work(boxes, work) * 1e-9);

    // Exact coverage of every input box by same-level pieces.
    for (const Box& in : boxes) {
      std::vector<Box> pieces;
      for (const auto& a : r.assignments)
        if (a.box.level() == in.level() && in.intersects(a.box))
          pieces.push_back(a.box.intersection(in));
      ASSERT_TRUE(box_difference(in, pieces).empty())
          << "trial " << trial << " box " << in;
    }
  }
}

TEST_P(PartitionerFuzzTest, OutputsPassTheInvariantAudit) {
  auto partitioner = make();
  Rng rng(0xbead + std::hash<std::string>{}(GetParam()));
  const WorkModel work;
  const audit::Validator validator;
  for (int trial = 0; trial < 50; ++trial) {
    const BoxList boxes = random_workload(rng, trial);
    const auto caps = random_capacities(rng, trial);
    ASSERT_TRUE(validator.validate_capacities(caps).ok());
    const PartitionResult r = partitioner->partition(boxes, caps, work);
    const audit::AuditReport report = validator.validate_partition(
        boxes, r, caps, work, partitioner->constraints());
    ASSERT_TRUE(report.ok())
        << "trial " << trial << ": " << report.summary();
  }
}

// Keep this list in sync with partitioner_zoo(); the registry-consistency
// test in partition_differential_test cross-checks the ids.
INSTANTIATE_TEST_SUITE_P(AllSchemes, PartitionerFuzzTest,
                         ::testing::Values("default", "heterogeneous",
                                           "multiaxis", "sfc-heterogeneous",
                                           "greedy", "knapsack",
                                           "sfc-knapsack",
                                           "distributed-sfc"));

}  // namespace
}  // namespace ssamr

// Tests for the partitioners: splitting machinery, the GrACE default
// baseline, ACEHeterogeneous, and the multi-axis extension.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <ostream>

#include "util/error.hpp"
#include "geom/box_algebra.hpp"
#include "partition/grace_default.hpp"
#include "partition/heterogeneous.hpp"
#include "partition/knapsack.hpp"
#include "partition/metrics.hpp"
#include "partition/greedy.hpp"
#include "partition/multiaxis.hpp"
#include "partition/partition_audit.hpp"
#include "partition/sfc_heterogeneous.hpp"
#include "partition/sfc_knapsack.hpp"
#include "sfc/sfc_index.hpp"

namespace ssamr {
namespace {

const WorkModel kWork{2, Work{1.0}};

BoxList uniform_grid_boxes(coord_t n_per_axis, coord_t box_size,
                           level_t level = 0) {
  BoxList out;
  for (coord_t i = 0; i < n_per_axis; ++i)
    for (coord_t j = 0; j < n_per_axis; ++j)
      out.push_back(Box::from_extent(
          IntVec(i * box_size, j * box_size, 0),
          IntVec(box_size, box_size, box_size), level));
  return out;
}

TEST(SplitForWork, FirstPieceApproachesTargetFromBelow) {
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(32, 4, 4));
  PartitionConstraints c;
  c.min_box_size = 2;
  const auto pieces = split_for_work(b, 100.0, kWork, c);
  ASSERT_TRUE(pieces.has_value());
  // plane work = 16 cells; 100/16 = 6.25 -> 6 planes = 96 work.
  EXPECT_DOUBLE_EQ(box_work(pieces->first, kWork), 96.0);
  EXPECT_DOUBLE_EQ(box_work(pieces->second, kWork),
                   box_work(b, kWork) - 96.0);
}

TEST(SplitForWork, CutsAlongLongestAxis) {
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(4, 32, 4));
  PartitionConstraints c;
  c.min_box_size = 2;
  const auto pieces = split_for_work(b, 128.0, kWork, c);
  ASSERT_TRUE(pieces.has_value());
  EXPECT_EQ(pieces->first.extent().x, 4);
  EXPECT_EQ(pieces->first.extent().z, 4);
  EXPECT_LT(pieces->first.extent().y, 32);
}

TEST(SplitForWork, MinSizeClampsBothSides) {
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(16, 2, 2));
  PartitionConstraints c;
  c.min_box_size = 4;
  // Tiny target: the cut still leaves >= 4 planes on each side.
  const auto lo = split_for_work(b, 1.0, kWork, c);
  ASSERT_TRUE(lo.has_value());
  EXPECT_EQ(lo->first.extent().x, 4);
  // Huge target: clamped from the other end.
  const auto hi = split_for_work(b, 1.0e9, kWork, c);
  ASSERT_TRUE(hi.has_value());
  EXPECT_EQ(hi->second.extent().x, 4);
}

TEST(SplitForWork, HugeTargetOverTinyPlaneWorkClampsWithoutOverflow) {
  // Regression: target_work / plane_work can reach infinity (or any value
  // beyond coord_t's range) when the per-plane work is denormal-small, and
  // casting such a double to an integer is undefined behaviour (UBSan:
  // float-cast-overflow).  The quotient must be clamped in floating point
  // before the cast — post-fix this returns the largest admissible cut.
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(64, 4, 4));
  PartitionConstraints c;
  c.min_box_size = 2;
  const WorkModel tiny{2, Work{1e-300}};
  const auto pieces = split_for_work(b, 1.0e300, tiny, c);
  ASSERT_TRUE(pieces.has_value());
  EXPECT_EQ(pieces->first.extent().x, 62);
  EXPECT_EQ(pieces->second.extent().x, 2);
  // Same overflow through the multi-axis scorer.
  c.longest_axis_only = false;
  const auto multi = split_for_work(b, 1.0e300, tiny, c);
  ASSERT_TRUE(multi.has_value());
}

TEST(SplitForWork, ZeroPlaneWorkRefusesInsteadOfDividingByZero) {
  // cost_per_cell = 0 makes every plane free: target / 0 is inf (or NaN
  // for a zero target) and there is no meaningful cut — the split must
  // refuse, not cast a non-finite quotient.
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(64, 4, 4));
  PartitionConstraints c;
  c.min_box_size = 2;
  const WorkModel zero{2, Work{0.0}};
  EXPECT_FALSE(split_for_work(b, 100.0, zero, c).has_value());
  EXPECT_FALSE(split_for_work(b, 0.0, zero, c).has_value());
}

TEST(SplitForWork, RefusesWhenBoxTooSmall) {
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(6, 6, 6));
  PartitionConstraints c;
  c.min_box_size = 4;  // 6 < 2*4 in every direction
  EXPECT_FALSE(split_for_work(b, 50.0, kWork, c).has_value());
}

TEST(SplitForWork, MultiAxisPicksBestFit) {
  // 8x8x8 box, target = exactly 3 x-planes of work.  Longest-axis-only is
  // forced to the x axis anyway here, so craft an anisotropic case:
  // extents (4, 16, 8); target fits 5 y-planes (5*32=160) better than any
  // admissible z cut (z planes are 64 each: 2 planes = 128 or 3 = 192).
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(4, 16, 8));
  PartitionConstraints c;
  c.min_box_size = 2;
  c.longest_axis_only = false;
  const auto pieces = split_for_work(b, 160.0, kWork, c);
  ASSERT_TRUE(pieces.has_value());
  EXPECT_DOUBLE_EQ(box_work(pieces->first, kWork), 160.0);
}

TEST(AssignSequence, LastProcessorAbsorbsRemainder) {
  std::vector<Box> boxes{
      Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4)),
      Box::from_extent(IntVec(8, 0, 0), IntVec(4, 4, 4)),
      Box::from_extent(IntVec(16, 0, 0), IntVec(4, 4, 4))};
  const PartitionConstraints c;
  const auto r = assign_sequence(boxes, {0.0, 0.0}, {0, 1}, kWork, c);
  EXPECT_DOUBLE_EQ(r.assigned_work[1], 3 * 64.0);
  EXPECT_DOUBLE_EQ(r.assigned_work[0], 0.0);
}

struct UnsplittableCase {
  const char* label;
  std::vector<real_t> targets;
  std::vector<real_t> expected_work;
};

TEST(AssignSequence, UnsplittableBoxPolicyTable) {
  // Three 4³ boxes (64 work each) that min_box_size = 4 makes unsplittable:
  // the walk must decide take-vs-defer by the half-fits rule and let the
  // last processor absorb whatever is left.
  const std::vector<Box> boxes{
      Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4)),
      Box::from_extent(IntVec(8, 0, 0), IntVec(4, 4, 4)),
      Box::from_extent(IntVec(16, 0, 0), IntVec(4, 4, 4))};
  PartitionConstraints c;
  c.min_box_size = 4;

  const std::vector<UnsplittableCase> cases{
      // remaining 40 ≥ 64/2: the first rank takes the oversized box.
      {"takes_when_at_least_half_fits", {40.0, 152.0}, {64.0, 128.0}},
      // remaining exactly half: the boundary counts as a take.
      {"takes_at_exactly_half", {32.0, 160.0}, {64.0, 128.0}},
      // remaining 24 < 32: the box is deferred to the next rank.
      {"defers_when_less_than_half_fits", {24.0, 168.0}, {0.0, 192.0}},
      // every target undersized: the last rank still absorbs everything.
      {"last_rank_absorbs_regardless_of_target", {16.0, 16.0}, {0.0, 192.0}},
      // a zero target is skipped without consuming a box.
      {"zero_target_skipped", {0.0, 192.0}, {0.0, 192.0}},
      // middle rank defers, the pieces land on its neighbours.
      {"mid_rank_defers_to_last", {40.0, 24.0, 128.0}, {64.0, 0.0, 128.0}},
  };

  for (const UnsplittableCase& tc : cases) {
    SCOPED_TRACE(tc.label);
    std::vector<rank_t> order(tc.targets.size());
    std::iota(order.begin(), order.end(), 0);
    const PartitionResult r =
        assign_sequence(boxes, tc.targets, order, kWork, c);
    EXPECT_EQ(r.splits, 0);
    EXPECT_EQ(r.assignments.size(), boxes.size());
    ASSERT_EQ(r.assigned_work.size(), tc.expected_work.size());
    for (std::size_t k = 0; k < tc.expected_work.size(); ++k)
      EXPECT_DOUBLE_EQ(r.assigned_work[k], tc.expected_work[k]);
  }
}

TEST(AssignSequence, ValidatesArity) {
  EXPECT_THROW(assign_sequence({}, {}, {}, kWork, {}), Error);
  EXPECT_THROW(assign_sequence({}, {1.0}, {0, 1}, kWork, {}), Error);
}

// ---- invariants common to all partitioners --------------------------------

struct PartitionerCase {
  std::shared_ptr<const Partitioner> partitioner;
  std::vector<real_t> capacities;
  const char* label;
};

std::ostream& operator<<(std::ostream& os, const PartitionerCase& c) {
  return os << c.label << "/" << c.capacities.size() << "procs";
}

class PartitionerInvariantTest
    : public ::testing::TestWithParam<PartitionerCase> {};

TEST_P(PartitionerInvariantTest, CoversInputExactlyOnce) {
  const auto& param = GetParam();
  BoxList boxes = uniform_grid_boxes(4, 8);
  boxes.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(16, 16, 16), 1));
  const PartitionResult r =
      param.partitioner->partition(boxes, param.capacities, kWork);

  // Same total cells, no overlaps among same-level assignment boxes.
  std::int64_t cells = 0;
  for (const auto& a : r.assignments) {
    cells += a.box.cells();
    EXPECT_GE(a.owner, 0);
    EXPECT_LT(a.owner, static_cast<rank_t>(param.capacities.size()));
  }
  EXPECT_EQ(cells, boxes.total_cells());

  BoxList all;
  for (const auto& a : r.assignments) all.push_back(a.box);
  EXPECT_FALSE(all.has_overlap());

  // Every input box is exactly covered by same-level assignment pieces.
  for (const Box& in : boxes) {
    std::vector<Box> pieces;
    for (const auto& a : r.assignments)
      if (a.box.level() == in.level() && in.intersects(a.box))
        pieces.push_back(a.box.intersection(in));
    EXPECT_TRUE(box_difference(in, pieces).empty());
  }
}

TEST_P(PartitionerInvariantTest, WorkBookkeepingConsistent) {
  const auto& param = GetParam();
  const BoxList boxes = uniform_grid_boxes(4, 8);
  const PartitionResult r =
      param.partitioner->partition(boxes, param.capacities, kWork);
  ASSERT_EQ(r.assigned_work.size(), param.capacities.size());
  ASSERT_EQ(r.target_work.size(), param.capacities.size());
  real_t recomputed = 0;
  std::vector<real_t> per_rank(param.capacities.size(), 0);
  for (const auto& a : r.assignments) {
    const real_t w = box_work(a.box, kWork);
    recomputed += w;
    per_rank[static_cast<std::size_t>(a.owner)] += w;
  }
  EXPECT_NEAR(recomputed, total_work(boxes, kWork), 1e-9);
  for (std::size_t k = 0; k < per_rank.size(); ++k)
    EXPECT_NEAR(per_rank[k], r.assigned_work[k], 1e-9);
  EXPECT_NEAR(std::accumulate(r.target_work.begin(), r.target_work.end(),
                              real_t{0}),
              total_work(boxes, kWork), 1e-6);
}

TEST_P(PartitionerInvariantTest, Deterministic) {
  const auto& param = GetParam();
  const BoxList boxes = uniform_grid_boxes(3, 8);
  const auto a = param.partitioner->partition(boxes, param.capacities, kWork);
  const auto b = param.partitioner->partition(boxes, param.capacities, kWork);
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].box, b.assignments[i].box);
    EXPECT_EQ(a.assignments[i].owner, b.assignments[i].owner);
  }
}

std::vector<PartitionerCase> make_cases() {
  std::vector<PartitionerCase> cases;
  const std::vector<std::vector<real_t>> capsets{
      {0.16, 0.19, 0.31, 0.34},
      {0.25, 0.25, 0.25, 0.25},
      {0.5, 0.5},
      {0.05, 0.1, 0.15, 0.2, 0.2, 0.3},
      {1.0}};
  for (const auto& caps : capsets) {
    cases.push_back({std::make_shared<GraceDefaultPartitioner>(), caps,
                     "default"});
    cases.push_back({std::make_shared<HeterogeneousPartitioner>(), caps,
                     "heterogeneous"});
    cases.push_back({std::make_shared<MultiAxisPartitioner>(), caps,
                     "multiaxis"});
    cases.push_back({std::make_shared<SfcHeterogeneousPartitioner>(), caps,
                     "sfc_heterogeneous"});
    cases.push_back({std::make_shared<GreedyPartitioner>(), caps,
                     "greedy"});
    cases.push_back({std::make_shared<KnapsackPartitioner>(), caps,
                     "knapsack"});
    cases.push_back({std::make_shared<SfcKnapsackHybrid>(), caps,
                     "sfc_knapsack"});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPartitioners, PartitionerInvariantTest,
                         ::testing::ValuesIn(make_cases()));

// ---- scheme-specific behaviour --------------------------------------------

TEST(GraceDefault, SplitsEquallyRegardlessOfCapacity) {
  GraceDefaultPartitioner p;
  const BoxList boxes = uniform_grid_boxes(4, 8);
  const auto r = p.partition(boxes, {0.1, 0.2, 0.3, 0.4}, kWork);
  const real_t expected = total_work(boxes, kWork) / 4;
  for (real_t w : r.assigned_work) EXPECT_NEAR(w, expected, expected * 0.2);
}

TEST(GraceDefault, ContiguousChunksPreserveLocality) {
  // On a uniform row of boxes the default partitioner must give each
  // processor a spatially contiguous run.
  GraceDefaultPartitioner p;
  BoxList boxes;
  for (coord_t i = 0; i < 8; ++i)
    boxes.push_back(
        Box::from_extent(IntVec(i * 4, 0, 0), IntVec(4, 4, 4), 0));
  const auto r = p.partition(boxes, {0.25, 0.25, 0.25, 0.25}, kWork);
  for (rank_t k = 0; k < 4; ++k) {
    const BoxList mine = r.boxes_of(k);
    ASSERT_EQ(mine.size(), 2u);
    // The two boxes of each rank are adjacent along x.
    const coord_t gap =
        std::abs(mine[0].lo().x - mine[1].lo().x);
    EXPECT_EQ(gap, 4);
  }
}

TEST(Heterogeneous, AssignsProportionallyToCapacities) {
  HeterogeneousPartitioner p;
  const BoxList boxes = uniform_grid_boxes(8, 8);  // 64 boxes: fine grain
  const std::vector<real_t> caps{0.16, 0.19, 0.31, 0.34};
  const auto r = p.partition(boxes, caps, kWork);
  const real_t total = total_work(boxes, kWork);
  for (std::size_t k = 0; k < caps.size(); ++k)
    EXPECT_NEAR(r.assigned_work[k] / total, caps[k], 0.04);
}

TEST(Heterogeneous, NormalizesUnnormalizedCapacities) {
  HeterogeneousPartitioner p;
  const BoxList boxes = uniform_grid_boxes(4, 8);
  const auto r = p.partition(boxes, {1.0, 3.0}, kWork);
  const real_t total = total_work(boxes, kWork);
  EXPECT_NEAR(r.assigned_work[1] / total, 0.75, 0.1);
}

TEST(Heterogeneous, SingleBoxIsBrokenAcrossProcessors) {
  HeterogeneousPartitioner p;
  BoxList boxes;
  boxes.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(64, 8, 8), 0));
  const auto r = p.partition(boxes, {0.25, 0.25, 0.25, 0.25}, kWork);
  EXPECT_GE(r.splits, 3);
  for (real_t w : r.assigned_work) EXPECT_GT(w, 0.0);
}

TEST(Heterogeneous, SortingAvoidsUnnecessarySplits) {
  // Boxes whose sizes already match the capacity ladder need no breaking.
  HeterogeneousPartitioner p;
  BoxList boxes;
  boxes.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4)));
  boxes.push_back(Box::from_extent(IntVec(16, 0, 0), IntVec(4, 4, 8)));
  boxes.push_back(Box::from_extent(IntVec(32, 0, 0), IntVec(4, 4, 12)));
  boxes.push_back(Box::from_extent(IntVec(48, 0, 0), IntVec(4, 4, 16)));
  const real_t total = total_work(boxes, kWork);
  const std::vector<real_t> caps{64 / total, 128 / total, 192 / total,
                                 256 / total};
  const auto r = p.partition(boxes, caps, kWork);
  EXPECT_EQ(r.splits, 0);
  EXPECT_DOUBLE_EQ(r.assigned_work[0], 64.0);
  EXPECT_DOUBLE_EQ(r.assigned_work[3], 256.0);
}

TEST(Heterogeneous, ZeroCapacityProcessorGetsNothing) {
  HeterogeneousPartitioner p;
  const BoxList boxes = uniform_grid_boxes(4, 8);
  const auto r = p.partition(boxes, {0.0, 0.5, 0.5}, kWork);
  EXPECT_DOUBLE_EQ(r.assigned_work[0], 0.0);
}

TEST(Heterogeneous, RejectsBadCapacities) {
  HeterogeneousPartitioner p;
  const BoxList boxes = uniform_grid_boxes(2, 8);
  EXPECT_THROW(p.partition(boxes, {}, kWork), Error);
  EXPECT_THROW(p.partition(boxes, {-0.5, 1.5}, kWork), Error);
  EXPECT_THROW(p.partition(boxes, {0.0, 0.0}, kWork), Error);
}

TEST(Greedy, NeverSplitsBoxes) {
  GreedyPartitioner p;
  const BoxList boxes = uniform_grid_boxes(4, 8);
  const auto r = p.partition(boxes, {0.16, 0.19, 0.31, 0.34}, kWork);
  EXPECT_EQ(r.splits, 0);
  EXPECT_EQ(r.assignments.size(), boxes.size());
}

TEST(Greedy, TracksCapacitiesWhenGranularityAllows) {
  GreedyPartitioner p;
  const BoxList boxes = uniform_grid_boxes(8, 4);  // 64 small boxes
  const std::vector<real_t> caps{0.16, 0.19, 0.31, 0.34};
  const auto r = p.partition(boxes, caps, kWork);
  const real_t total = total_work(boxes, kWork);
  for (std::size_t k = 0; k < caps.size(); ++k)
    EXPECT_NEAR(r.assigned_work[k] / total, caps[k], 0.05);
}

TEST(Greedy, ZeroCapacityRankGetsNothing) {
  GreedyPartitioner p;
  const BoxList boxes = uniform_grid_boxes(3, 4);
  const auto r = p.partition(boxes, {0.0, 0.5, 0.5}, kWork);
  EXPECT_DOUBLE_EQ(r.assigned_work[0], 0.0);
}

TEST(SfcHeterogeneous, BalancesLikeHeterogeneousWithBetterLocality) {
  const BoxList boxes = uniform_grid_boxes(8, 8);
  const std::vector<real_t> caps{0.16, 0.19, 0.31, 0.34};
  SfcHeterogeneousPartitioner hybrid;
  HeterogeneousPartitioner het;
  const auto rh = hybrid.partition(boxes, caps, kWork);
  const auto rs = het.partition(boxes, caps, kWork);
  // Comparable balance...
  EXPECT_LT(effective_imbalance_pct(rh),
            effective_imbalance_pct(rs) + 5.0);
  // ...with no more communication than the size-sorted scheme.
  EXPECT_LE(partition_comm_cells(rh, 1), partition_comm_cells(rs, 1));
}

TEST(Knapsack, HandComputableTwoRankFixture) {
  // Works {64, 128, 192} on capacities {1/3, 2/3}.  LPT: 192 lands on the
  // fast rank (rel 288 vs 576), 128 on the slow rank (384 vs 480), 64 on
  // the fast rank (576 vs 384).  Both relative loads are then exactly 384,
  // and no exchange improves the peak, so the refinement keeps the seed:
  // assigned work {128, 256}.
  BoxList boxes;
  boxes.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4)));
  boxes.push_back(Box::from_extent(IntVec(16, 0, 0), IntVec(8, 4, 4)));
  boxes.push_back(Box::from_extent(IntVec(32, 0, 0), IntVec(12, 4, 4)));
  KnapsackPartitioner p;
  const auto r = p.partition(boxes, {1.0 / 3.0, 2.0 / 3.0}, kWork);
  EXPECT_EQ(r.splits, 0);
  ASSERT_EQ(r.assignments.size(), 3u);
  EXPECT_EQ(r.assignments[0].owner, 1);  // 64
  EXPECT_EQ(r.assignments[1].owner, 0);  // 128
  EXPECT_EQ(r.assignments[2].owner, 1);  // 192
  ASSERT_EQ(r.assigned_work.size(), 2u);
  EXPECT_DOUBLE_EQ(r.assigned_work[0], 128.0);
  EXPECT_DOUBLE_EQ(r.assigned_work[1], 256.0);
}

TEST(Knapsack, ExchangeRefinementBeatsPlainLpt) {
  // Works {5, 5, 4, 4, 4} on two equal ranks: the LPT seed ends at
  // {5+4+4, 5+4} = {13, 9} and no single move improves it (LPT seeds are
  // jump-optimal) — but swapping a 5 against a 4 reaches {12, 10}.  This
  // is exactly what separates the knapsack scheme from GreedyPartitioner.
  BoxList boxes;
  const coord_t cells[] = {5, 5, 4, 4, 4};
  for (coord_t i = 0; i < 5; ++i)
    boxes.push_back(Box::from_extent(IntVec(i * 8, 0, 0),
                                     IntVec(cells[i], 1, 1)));
  const std::vector<real_t> caps{0.5, 0.5};
  KnapsackPartitioner knapsack;
  GreedyPartitioner greedy;
  const auto rk = knapsack.partition(boxes, caps, kWork);
  const auto rg = greedy.partition(boxes, caps, kWork);
  EXPECT_DOUBLE_EQ(rg.assigned_work[0], 13.0);
  EXPECT_DOUBLE_EQ(rg.assigned_work[1], 9.0);
  EXPECT_DOUBLE_EQ(rk.assigned_work[0], 12.0);
  EXPECT_DOUBLE_EQ(rk.assigned_work[1], 10.0);
  const auto peak = [&](const PartitionResult& r) {
    return std::max(r.assigned_work[0] / caps[0],
                    r.assigned_work[1] / caps[1]);
  };
  EXPECT_LT(peak(rk), peak(rg));
}

TEST(Knapsack, ZeroCapacityRankGetsNothing) {
  KnapsackPartitioner p;
  const BoxList boxes = uniform_grid_boxes(3, 4);
  const auto r = p.partition(boxes, {0.0, 0.5, 0.5}, kWork);
  EXPECT_DOUBLE_EQ(r.assigned_work[0], 0.0);
}

TEST(SfcKnapsack, ContiguousCurveSegmentsNeverSplit) {
  // The hybrid refines only segment boundaries, so whatever the capacity
  // skew, each rank owns one contiguous SFC segment (rank order along the
  // curve) and no box is ever split.
  const BoxList boxes = uniform_grid_boxes(4, 8);
  const std::vector<real_t> caps{0.05, 0.15, 0.3, 0.5};
  SfcKnapsackHybrid p;
  const auto r = p.partition(boxes, caps, kWork);
  EXPECT_EQ(r.splits, 0);
  ASSERT_EQ(r.assignments.size(), boxes.size());

  const auto perm = sfc_order(boxes.boxes(), SfcConfig{});
  std::vector<rank_t> owner_at(perm.size(), -1);
  for (const auto& a : r.assignments) {
    std::size_t input = boxes.size();
    for (std::size_t i = 0; i < boxes.size(); ++i)
      if (boxes[i] == a.box) {
        input = i;
        break;
      }
    ASSERT_LT(input, boxes.size());
    for (std::size_t pos = 0; pos < perm.size(); ++pos)
      if (perm[pos] == input) owner_at[pos] = a.owner;
  }
  for (std::size_t pos = 1; pos < owner_at.size(); ++pos)
    EXPECT_GE(owner_at[pos], owner_at[pos - 1]) << "curve pos " << pos;
}

TEST(SfcKnapsack, RefinementTracksSkewedCapacities) {
  // On a fine-grained uniform workload the boundary refinement should land
  // each segment near its capacity-proportional share.
  const BoxList boxes = uniform_grid_boxes(8, 4);  // 64 small boxes
  const std::vector<real_t> caps{0.16, 0.19, 0.31, 0.34};
  SfcKnapsackHybrid p;
  const auto r = p.partition(boxes, caps, kWork);
  const real_t total = total_work(boxes, kWork);
  for (std::size_t k = 0; k < caps.size(); ++k)
    EXPECT_NEAR(r.assigned_work[k] / total, caps[k], 0.05);
}

TEST(PartitionAudit, RejectsIntentionallyOverlappingAssignment) {
  // Negative control for the whole harness: hand the auditor an assignment
  // that claims the first box twice and drops the second entirely — it
  // must reject it, proving coverage/disjointness failures cannot pass.
  BoxList boxes;
  boxes.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4)));
  boxes.push_back(Box::from_extent(IntVec(8, 0, 0), IntVec(4, 4, 4)));
  PartitionResult forged;
  forged.assignments = {{boxes[0], 0}, {boxes[0], 1}};
  forged.assigned_work = {64.0, 64.0};
  forged.target_work = {64.0, 64.0};
  const audit::AuditReport report = audit::validate_partition(
      boxes, forged, {0.5, 0.5}, kWork, PartitionConstraints{});
  EXPECT_FALSE(report.ok());
}

TEST(MultiAxis, ReducesImbalanceVersusLongestAxisOnly) {
  // A workload of a few large anisotropic boxes where plane granularity
  // along the longest axis is coarse: multi-axis splitting must not be
  // worse, and is typically better.
  BoxList boxes;
  boxes.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(12, 10, 6), 0));
  boxes.push_back(Box::from_extent(IntVec(16, 0, 0), IntVec(14, 6, 10), 0));
  boxes.push_back(Box::from_extent(IntVec(40, 0, 0), IntVec(10, 12, 8), 0));
  const std::vector<real_t> caps{0.16, 0.19, 0.31, 0.34};
  PartitionConstraints c;
  c.min_box_size = 2;
  HeterogeneousPartitioner single(c);
  MultiAxisPartitioner multi(c);
  const real_t i_single =
      effective_imbalance_pct(single.partition(boxes, caps, kWork));
  const real_t i_multi =
      effective_imbalance_pct(multi.partition(boxes, caps, kWork));
  EXPECT_LE(i_multi, i_single + 1e-9);
}

}  // namespace
}  // namespace ssamr

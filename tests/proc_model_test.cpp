// Tests of the proc execution model (sim/proc_model.hpp): the fork /
// Hello / phase / Shutdown lifecycle, plausible measured accounting, child
// reaping on normal destruction, and orphan reaping when the coordinator
// dies from SIGTERM mid-run (the PDEATHSIG path CI relies on to never
// hang).

#include <errno.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "net/proc_exit.hpp"
#include "sim/executor_audit.hpp"
#include "sim/proc_model.hpp"
#include "util/error.hpp"
#include "util/wallclock.hpp"

namespace ssamr {
namespace {

/// Three boxes in a row, one per rank at equal capacity: face-adjacent
/// neighbours, so ghost flows are non-empty.
PartitionResult row_partition(int nranks) {
  PartitionResult r;
  for (int k = 0; k < nranks; ++k)
    r.assignments.push_back(
        {Box::from_extent(IntVec(8 * k, 0, 0), IntVec(8, 8, 8), 0),
         static_cast<rank_t>(k)});
  r.assigned_work.assign(static_cast<std::size_t>(nranks), 512.0);
  r.target_work = r.assigned_work;
  return r;
}

ExecutorConfig fast_config() {
  ExecutorConfig cfg;
  cfg.ncomp = 1;
  cfg.ghost = 1;
  // Keep phases short: ~1 virtual second of compute -> ~1 ms of sleep.
  cfg.proc.time_scale = 1e-3;
  cfg.proc.frame_timeout_s = 20.0;
  return cfg;
}

bool process_exists(pid_t pid) { return ::kill(pid, 0) == 0; }

void sleep_ms_local(int ms) {
  struct timespec ts {0, ms * 1'000'000L};
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

/// True once every pid in `pids` is gone (polls up to `timeout_s`).
bool all_gone_within(const std::vector<pid_t>& pids, double timeout_s) {
  const double deadline = wallclock_seconds() + timeout_s;
  for (;;) {
    bool gone = true;
    for (const pid_t p : pids)
      if (process_exists(p)) gone = false;
    if (gone) return true;
    if (wallclock_seconds() >= deadline) return false;
    sleep_ms_local(10);
  }
}

TEST(ProcModel, ForksOneProcessPerRankAndReapsOnDestruction) {
  Cluster cluster = Cluster::homogeneous(3);
  std::vector<pid_t> pids;
  {
    sim::ProcModel model(cluster, fast_config());
    pids = model.child_pids();
    ASSERT_EQ(pids.size(), 3u);
    for (const pid_t p : pids) {
      EXPECT_GT(p, 0);
      EXPECT_TRUE(process_exists(p)) << "rank process died early";
    }
  }
  // Destructor returned -> every child must already be reaped (not merely
  // killed): no zombies, no orphans.
  EXPECT_TRUE(all_gone_within(pids, 1.0));
}

TEST(ProcModel, AdvanceMeasuresComputeAndExchange) {
  Cluster cluster = Cluster::homogeneous(4);
  sim::ProcModel model(cluster, fast_config());
  const PartitionResult r = row_partition(4);

  const StepCost cost = model.advance(r, Seconds{0}, 0);
  EXPECT_GT(cost.elapsed.value(), 0.0);
  EXPECT_GT(cost.compute.value(), 0.0);
  EXPECT_GE(cost.comm.value(), 0.0);
  EXPECT_GE(cost.elapsed.value(), cost.compute.value());
  // The emulated sleep puts a floor under the measured step: the critical
  // rank slept >= its modeled compute time, so the measured virtual
  // elapsed cannot be much below the modeled per-rank compute.
  const auto comp = model.costs().compute_times(r, Seconds{0});
  Seconds worst{0};
  for (const Seconds c : comp) worst = std::max(worst, c);
  EXPECT_GE(cost.elapsed.value(), 0.5 * worst.value());
  // Real bytes moved through the sockets.
  EXPECT_GT(model.wire_bytes_total(), 0u);
  EXPECT_GT(model.phase_wall_total(), 0.0);
}

TEST(ProcModel, FullStageSequenceAndTraceFinish) {
  Cluster cluster = Cluster::homogeneous(2);
  sim::ProcModel model(cluster, fast_config());
  const PartitionResult initial;  // empty previous = initial scatter
  const PartitionResult r = row_partition(2);

  Seconds t{0};
  t += model.sense(t, Seconds{0.5}, 0);
  // The seam contract (runtime.cpp stage_repartition): migration is
  // priced at the pre-regrid t and the driver adds both costs pre-summed.
  const Seconds t_regrid = model.regrid(t, r.assignments.size(), 0);
  const Seconds t_migrate = model.migrate(initial, r, t);
  t += t_regrid + t_migrate;
  for (int iter = 0; iter < 3; ++iter) t += model.advance(r, t, iter).elapsed;

  RunTrace trace;
  trace.model = model.name();
  model.finish(trace, t);
  EXPECT_EQ(trace.model, "proc");
  ASSERT_EQ(trace.rank_usage.size(), 2u);
  for (const RankUsage& u : trace.rank_usage) {
    EXPECT_GE(u.busy_s.value(), 0.0);
    EXPECT_GE(u.comm_s.value(), 0.0);
    EXPECT_GE(u.idle_s.value(), 0.0);
    // Lanes are advanced to exactly the driver clock.
    EXPECT_NEAR(u.busy_s.value() + u.comm_s.value() + u.idle_s.value(),
                t.value(), 1e-6 * t.value() + 1e-9);
  }
  EXPECT_FALSE(trace.spans.empty());
}

TEST(ProcModel, MigrationMovesScatterBytes) {
  Cluster cluster = Cluster::homogeneous(3);
  sim::ProcModel model(cluster, fast_config());
  const PartitionResult none;
  const PartitionResult r = row_partition(3);
  const Seconds cost = model.migrate(none, r, Seconds{0});
  EXPECT_GT(cost.value(), 0.0);
  // Initial scatter: rank 0 pushes boxes 1 and 2 to their owners.
  EXPECT_GT(model.wire_bytes_total(), 0u);
}

TEST(ProcModel, RejectsBadOptions) {
  Cluster cluster = Cluster::homogeneous(2);
  ExecutorConfig cfg = fast_config();
  cfg.proc.time_scale = 0.0;
  EXPECT_THROW(sim::ProcModel(cluster, cfg), Error);
  cfg = fast_config();
  cfg.proc.frame_timeout_s = -1.0;
  EXPECT_THROW(sim::ProcModel(cluster, cfg), Error);
  cfg = fast_config();
  cfg.proc.time_scale = -1e-3;
  EXPECT_THROW(sim::ProcModel(cluster, cfg), Error);
  cfg = fast_config();
  cfg.proc.time_scale = std::nan("");  // NaN must not pass a > 0 gate
  EXPECT_THROW(sim::ProcModel(cluster, cfg), Error);
  cfg = fast_config();
  cfg.proc.bytes_scale = -0.5;
  EXPECT_THROW(sim::ProcModel(cluster, cfg), Error);
}

TEST(ProcModel, RejectsRankCountBeyondCap) {
  // Validation runs before any fork: a cluster past kMaxProcRanks must
  // throw without ever spawning a process.
  Cluster cluster = Cluster::homogeneous(sim::kMaxProcRanks + 1);
  EXPECT_THROW(sim::ProcModel(cluster, fast_config()), Error);
}

TEST(ValidateProcOptions, ReportsEveryBadKnobByKey) {
  ProcOptions opt;  // defaults are valid
  EXPECT_TRUE(audit::validate_proc_options(opt, 2).ok());

  opt.time_scale = std::nan("");
  opt.bytes_scale = -1.0;
  opt.frame_timeout_s = 0.0;
  const audit::AuditReport r = audit::validate_proc_options(opt, 0);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("proc.time_scale"));
  EXPECT_TRUE(r.has("proc.bytes_scale"));
  EXPECT_TRUE(r.has("proc.frame_timeout"));
  EXPECT_TRUE(r.has("proc.ranks"));

  ProcOptions ok;
  EXPECT_TRUE(audit::validate_proc_options(ok, sim::kMaxProcRanks).ok());
  EXPECT_TRUE(audit::validate_proc_options(ok, sim::kMaxProcRanks + 1)
                  .has("proc.ranks"));
}

TEST(ProcOptions, ToVirtualIsTheNormalizationSeam) {
  ProcOptions opt;
  opt.time_scale = 1e-3;  // 1 ms wall == 1 virtual second
  EXPECT_DOUBLE_EQ(opt.to_virtual(2e-3).value(), 2.0);
  opt.time_scale = 1.0;
  EXPECT_DOUBLE_EQ(opt.to_virtual(0.25).value(), 0.25);
}

// The CI-critical guarantee: if the coordinator dies without running the
// destructor (SIGTERM mid-run), the rank processes must die with it via
// PR_SET_PDEATHSIG — no orphans for the smoke job to leak.
TEST(ProcModel, SigtermOnCoordinatorReapsRankProcesses) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);

  const pid_t driver = ::fork();
  ASSERT_GE(driver, 0);
  if (driver == 0) {
    // ---- driver: a stand-in coordinator that will be SIGTERMed.
    ::close(fds[0]);
    try {
      Cluster cluster = Cluster::homogeneous(3);
      sim::ProcModel model(cluster, fast_config());
      const std::vector<pid_t>& pids = model.child_pids();
      for (const pid_t p : pids) {
        const std::int64_t v = p;
        if (::write(fds[1], &v, sizeof v) != sizeof v)
          net::hard_exit(1);
      }
      // Park forever mid-"run"; SIGTERM's default disposition kills us
      // without unwinding, so ~ProcModel never runs.
      for (;;) ::pause();
    } catch (...) {
      net::hard_exit(1);
    }
  }
  // ---- test process
  ::close(fds[1]);
  std::vector<pid_t> grandchildren;
  for (int i = 0; i < 3; ++i) {
    std::int64_t v = 0;
    ASSERT_EQ(::read(fds[0], &v, sizeof v), static_cast<ssize_t>(sizeof v));
    grandchildren.push_back(static_cast<pid_t>(v));
  }
  ::close(fds[0]);
  for (const pid_t p : grandchildren) EXPECT_TRUE(process_exists(p));

  ASSERT_EQ(::kill(driver, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(driver, &status, 0), driver);
  EXPECT_TRUE(WIFSIGNALED(status));

  // PDEATHSIG delivers SIGKILL to every rank process; init reaps them.
  EXPECT_TRUE(all_gone_within(grandchildren, 5.0))
      << "rank processes outlived a SIGTERMed coordinator";
}

}  // namespace
}  // namespace ssamr

// Tests for the Richardson-extrapolation error estimator and the MUSCL
// second-order reconstruction option of the Euler kernel.

#include <gtest/gtest.h>

#include <cmath>

#include "amr/richardson.hpp"
#include "solver/advection.hpp"
#include "solver/euler.hpp"
#include "util/error.hpp"

namespace ssamr {
namespace {

// ---- Richardson ------------------------------------------------------------

Patch advection_patch_with(const AdvectionOperator& op, real_t dx) {
  Patch p(Box::from_extent(IntVec(0, 0, 0), IntVec(16, 8, 8), 0), 1, 1);
  op.initialize(p, dx);
  return p;
}

TEST(Richardson, UniformStateHasZeroError) {
  EulerOperator op(1.4, [](real_t, real_t, real_t) {
    return EulerPrimitive{1.0, 0.2, 0.0, 0.0, 1.0};
  });
  Patch p(Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 0),
          kEulerNcomp, 1);
  op.initialize(p, 1.0);
  RichardsonFlagger flagger(op, 1e-8);
  std::vector<IntVec> flags;
  GridLevel lvl(0, kEulerNcomp, 1);
  lvl.add_patch(p.box());
  op.initialize(lvl.patch(0), 1.0);
  flagger.flag_level(lvl, flags);
  EXPECT_TRUE(flags.empty());
}

TEST(Richardson, ErrorConcentratesAtTheFeature) {
  AdvectionOperator op(1, 0, 0, /*centre=*/0.5, 0.25, 0.25,
                       /*radius=*/0.12);
  const real_t dx = 1.0 / 16.0;
  Patch p = advection_patch_with(op, dx);
  RichardsonFlagger flagger(op, 1e-6);
  const GridFunction err = flagger.estimate_patch_error(p);
  // Error at the blob (coarse x ~ 4) must dwarf error far away (x ~ 0).
  const real_t at_blob = err(0, 4, 2, 2);
  const real_t far = err(0, 0, 0, 0);
  EXPECT_GT(at_blob, 10 * far);
}

TEST(Richardson, FlagsOnlyAboveTolerance) {
  AdvectionOperator op(1, 0, 0, 0.5, 0.25, 0.25, 0.12);
  const real_t dx = 1.0 / 16.0;
  GridLevel lvl(0, 1, 1);
  lvl.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(16, 8, 8), 0));
  op.initialize(lvl.patch(0), dx);

  std::vector<IntVec> strict, loose;
  RichardsonFlagger(op, 1.0).flag_level(lvl, strict);
  RichardsonFlagger(op, 1e-4).flag_level(lvl, loose);
  EXPECT_TRUE(strict.empty());
  EXPECT_FALSE(loose.empty());
  // Loose flags concentrate around the blob centre (x ≈ 8 in cells); the
  // clamp-boundary probe may add a few conservative flags at patch edges.
  std::size_t central = 0;
  for (const IntVec& f : loose)
    if (f.x >= 2 && f.x <= 13) ++central;
  EXPECT_GT(central, loose.size() / 2);
}

TEST(Richardson, TighterToleranceFlagsMore) {
  AdvectionOperator op(1, 0, 0, 0.5, 0.25, 0.25, 0.12);
  GridLevel lvl(0, 1, 1);
  lvl.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(16, 8, 8), 0));
  op.initialize(lvl.patch(0), 1.0 / 16.0);
  std::vector<IntVec> a, b;
  RichardsonFlagger(op, 1e-3).flag_level(lvl, a);
  RichardsonFlagger(op, 1e-5).flag_level(lvl, b);
  EXPECT_LE(a.size(), b.size());
}

TEST(Richardson, ValidatesArguments) {
  AdvectionOperator op(1, 0, 0, 0.5, 0.25, 0.25, 0.12);
  EXPECT_THROW(RichardsonFlagger(op, 0.0), Error);
  EXPECT_THROW(RichardsonFlagger(op, 0.1, 0), Error);
  EXPECT_THROW(RichardsonFlagger(op, 0.1, 1, 1.5), Error);
}

// ---- MUSCL -----------------------------------------------------------------

TEST(Muscl, NeedsWiderGhosts) {
  auto ic = [](real_t, real_t, real_t) {
    return EulerPrimitive{1, 0, 0, 0, 1};
  };
  EulerOperator first(1.4, ic, EulerReconstruction::FirstOrder);
  EulerOperator muscl(1.4, ic, EulerReconstruction::Muscl);
  EXPECT_EQ(first.ghost(), 1);
  EXPECT_EQ(muscl.ghost(), 2);
}

TEST(Muscl, UniformStateStaysSteady) {
  EulerOperator op(1.4,
                   [](real_t, real_t, real_t) {
                     return EulerPrimitive{1.0, 0.3, 0.1, 0.0, 2.0};
                   },
                   EulerReconstruction::Muscl);
  Patch p(Box::from_extent(IntVec(0, 0, 0), IntVec(8, 4, 4), 0),
          kEulerNcomp, 2);
  op.initialize(p, 1.0 / 8.0);
  // Fill ghosts with the same uniform state.
  GridFunction& u = p.data();
  const Box sb = u.storage_box();
  const EulerState s = to_conserved({1.0, 0.3, 0.1, 0.0, 2.0}, 1.4);
  for (int c = 0; c < kEulerNcomp; ++c)
    for (coord_t k = sb.lo().z; k <= sb.hi().z; ++k)
      for (coord_t j = sb.lo().y; j <= sb.hi().y; ++j)
        for (coord_t i = sb.lo().x; i <= sb.hi().x; ++i)
          u(c, i, j, k) = s[c];
  op.advance(p, 0.01, 1.0 / 8.0);
  for (int c = 0; c < kEulerNcomp; ++c)
    EXPECT_NEAR(p.scratch()(c, 3, 2, 2), s[c], 1e-12);
}

TEST(Muscl, SharperThanFirstOrderOnASmoothWave) {
  // Advect a smooth density wave in 1-D (uniform velocity, constant
  // pressure); compare L1 error after identical step counts.
  auto ic = [](real_t x, real_t, real_t) {
    EulerPrimitive s;
    s.rho = 1.0 + 0.3 * std::sin(2 * 3.14159265358979 * x);
    s.u = 1.0;
    s.p = 5.0;  // high pressure: nearly incompressible transport
    return s;
  };
  const coord_t n = 32;
  const real_t dx = 1.0 / static_cast<real_t>(n);

  auto run = [&](EulerReconstruction rec) {
    EulerOperator op(1.4, ic, rec);
    const int g = op.ghost();
    Patch p(Box::from_extent(IntVec(0, 0, 0), IntVec(n, 4, 4), 0),
            kEulerNcomp, g);
    op.initialize(p, dx);
    const real_t dt = 0.2 * dx / 4.0;
    const int steps = 40;
    for (int step = 0; step < steps; ++step) {
      // Periodic ghost fill along x; clamp in y/z (solution is y/z
      // independent).
      GridFunction& u = p.data();
      const Box sb = u.storage_box();
      for (int c = 0; c < kEulerNcomp; ++c)
        for (coord_t k = sb.lo().z; k <= sb.hi().z; ++k)
          for (coord_t j = sb.lo().y; j <= sb.hi().y; ++j)
            for (coord_t i = sb.lo().x; i <= sb.hi().x; ++i) {
              if (p.box().contains(IntVec(i, j, k))) continue;
              coord_t si = (i % n + n) % n;
              coord_t sj = std::clamp<coord_t>(j, 0, 3);
              coord_t sk = std::clamp<coord_t>(k, 0, 3);
              u(c, i, j, k) = u(c, si, sj, sk);
            }
      op.advance(p, dt, dx);
      p.swap_time_levels();
    }
    // L1 density error against the exactly translated profile.
    const real_t t = dt * steps;
    real_t l1 = 0;
    for (coord_t i = 0; i < n; ++i) {
      const real_t x = (static_cast<real_t>(i) + 0.5) * dx;
      const real_t exact =
          1.0 + 0.3 * std::sin(2 * 3.14159265358979 * (x - t));
      l1 += std::abs(p.data()(kRho, i, 2, 2) - exact);
    }
    return l1 / n;
  };

  const real_t err_first = run(EulerReconstruction::FirstOrder);
  const real_t err_muscl = run(EulerReconstruction::Muscl);
  EXPECT_LT(err_muscl, err_first * 0.7);
}

TEST(Muscl, ShockTubeStillRobust) {
  // MUSCL must not blow up across a strong discontinuity (limiter check).
  EulerOperator op(1.4,
                   [](real_t x, real_t, real_t) {
                     EulerPrimitive s;
                     s.rho = x < 0.5 ? 1.0 : 0.125;
                     s.p = x < 0.5 ? 1.0 : 0.1;
                     return s;
                   },
                   EulerReconstruction::Muscl);
  const coord_t n = 32;
  const real_t dx = 1.0 / n;
  Patch p(Box::from_extent(IntVec(0, 0, 0), IntVec(n, 4, 4), 0),
          kEulerNcomp, 2);
  op.initialize(p, dx);
  for (int step = 0; step < 20; ++step) {
    GridFunction& u = p.data();
    const Box sb = u.storage_box();
    for (int c = 0; c < kEulerNcomp; ++c)
      for (coord_t k = sb.lo().z; k <= sb.hi().z; ++k)
        for (coord_t j = sb.lo().y; j <= sb.hi().y; ++j)
          for (coord_t i = sb.lo().x; i <= sb.hi().x; ++i) {
            if (p.box().contains(IntVec(i, j, k))) continue;
            u(c, i, j, k) =
                u(c, std::clamp<coord_t>(i, 0, n - 1),
                  std::clamp<coord_t>(j, 0, 3),
                  std::clamp<coord_t>(k, 0, 3));
          }
    const real_t dt = 0.2 * dx / op.max_wave_speed(p);
    op.advance(p, dt, dx);
    p.swap_time_levels();
  }
  for (coord_t i = 0; i < n; ++i) {
    const EulerPrimitive s = to_primitive(
        {p.data()(kRho, i, 2, 2), p.data()(kMomX, i, 2, 2),
         p.data()(kMomY, i, 2, 2), p.data()(kMomZ, i, 2, 2),
         p.data()(kEner, i, 2, 2)},
        1.4);
    EXPECT_GT(s.rho, 0.05);
    EXPECT_LT(s.rho, 1.5);
    EXPECT_TRUE(std::isfinite(s.p));
  }
}

}  // namespace
}  // namespace ssamr

// Integration tests for the adaptive system-sensitive runtime.

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "core/experiment.hpp"
#include "core/ssamr.hpp"

namespace ssamr {
namespace {

TraceConfig small_trace() {
  TraceConfig cfg;
  cfg.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(32, 8, 8), 0);
  cfg.max_levels = 3;
  cfg.cluster.min_box_size = 2;
  cfg.cluster.small_box_cells = 64;
  return cfg;
}

RuntimeConfig small_runtime(int iters, int sensing) {
  RuntimeConfig cfg;
  cfg.total_iterations = iters;
  cfg.regrid_interval = 5;
  cfg.sensing.interval = sensing;
  cfg.monitor.noise = SensorNoise{0, 0, 0};
  cfg.executor.ncomp = 1;
  cfg.executor.ghost = 1;
  return cfg;
}

TEST(AdaptiveRuntime, RecordsExpectedEventCounts) {
  Cluster cluster = Cluster::homogeneous(4);
  TraceWorkloadSource source(small_trace());
  HeterogeneousPartitioner part;
  AdaptiveRuntime rt(cluster, source, part, small_runtime(20, 5));
  const RunTrace t = rt.run();
  EXPECT_EQ(t.iterations, 20);
  EXPECT_EQ(t.regrids.size(), 4u);  // iterations 0, 5, 10, 15
  // Initial sense + senses at iterations 5, 10, 15.
  EXPECT_EQ(t.senses.size(), 4u);
  EXPECT_GT(t.total_time, Seconds{0.0});
  EXPECT_GT(t.compute_time, Seconds{0.0});
}

TEST(AdaptiveRuntime, SensingIntervalZeroSensesOnce) {
  Cluster cluster = Cluster::homogeneous(2);
  TraceWorkloadSource source(small_trace());
  HeterogeneousPartitioner part;
  AdaptiveRuntime rt(cluster, source, part, small_runtime(20, 0));
  const RunTrace t = rt.run();
  EXPECT_EQ(t.senses.size(), 1u);
  EXPECT_DOUBLE_EQ(t.sense_time.value(), 2 * 0.5);
}

TEST(AdaptiveRuntime, TimeBreakdownSumsBelowTotal) {
  Cluster cluster = Cluster::homogeneous(4);
  TraceWorkloadSource source(small_trace());
  GraceDefaultPartitioner part;
  AdaptiveRuntime rt(cluster, source, part, small_runtime(15, 5));
  const RunTrace t = rt.run();
  const Seconds parts = t.compute_time + t.comm_time + t.sense_time +
                        t.regrid_time + t.migrate_time;
  EXPECT_NEAR(parts.value(), t.total_time.value(), t.total_time.value() * 0.01);
}

TEST(AdaptiveRuntime, DeterministicAcrossRuns) {
  auto run_once = [] {
    Cluster cluster = Cluster::homogeneous(4);
    LoadRamp r;
    r.rate = 0.01;
    r.target_level = 2.0;
    cluster.add_load(1, r);
    TraceWorkloadSource source(small_trace());
    HeterogeneousPartitioner part;
    RuntimeConfig cfg = small_runtime(20, 5);
    cfg.monitor.noise = SensorNoise{};  // default noise, seeded
    AdaptiveRuntime rt(cluster, source, part, cfg);
    return rt.run().total_time;
  };
  EXPECT_DOUBLE_EQ(run_once().value(), run_once().value());
}

TEST(AdaptiveRuntime, CapacitiesRespondToLoad) {
  Cluster cluster = Cluster::homogeneous(2);
  LoadRamp r;
  r.rate = 0;
  r.target_level = 3.0;  // cpu 0.25 on node 0 from the start
  cluster.add_load(0, r);
  TraceWorkloadSource source(small_trace());
  HeterogeneousPartitioner part;
  AdaptiveRuntime rt(cluster, source, part, small_runtime(10, 5));
  const RunTrace t = rt.run();
  ASSERT_FALSE(t.regrids.empty());
  const auto& caps = t.regrids.back().capacities;
  EXPECT_LT(caps[0], caps[1]);
  // And the partitioner followed the capacities.
  EXPECT_LT(t.regrids.back().assigned_work[0],
            t.regrids.back().assigned_work[1]);
}

TEST(AdaptiveRuntime, ImbalanceRecordedPerRegrid) {
  Cluster cluster = Cluster::homogeneous(4);
  TraceWorkloadSource source(small_trace());
  HeterogeneousPartitioner part;
  AdaptiveRuntime rt(cluster, source, part, small_runtime(10, 0));
  const RunTrace t = rt.run();
  for (const auto& rec : t.regrids) {
    EXPECT_EQ(rec.imbalance_pct.size(), 4u);
    EXPECT_EQ(rec.assigned_work.size(), 4u);
    EXPECT_GT(rec.total_work, Work{0.0});
    EXPECT_GT(rec.num_boxes, 0u);
  }
  EXPECT_GE(t.mean_max_imbalance_pct(), Percent{0.0});
}

TEST(AdaptiveRuntime, SystemSensitiveBeatsDefaultUnderLoad) {
  auto run_with = [](const Partitioner& p) {
    Cluster cluster = Cluster::homogeneous(4);
    LoadRamp r;
    r.rate = 0;
    r.target_level = 2.0;
    r.memory_mb = MegaBytes{100};
    cluster.add_load(0, r);
    TraceWorkloadSource source(small_trace());
    AdaptiveRuntime rt(cluster, source, p, small_runtime(30, 0));
    return rt.run().total_time;
  };
  HeterogeneousPartitioner het;
  GraceDefaultPartitioner def;
  EXPECT_LT(run_with(het), run_with(def));
}

TEST(AdaptiveRuntime, MoreFrequentSensingCostsMoreSenseTime) {
  auto sense_time = [](int interval) {
    Cluster cluster = Cluster::homogeneous(4);
    TraceWorkloadSource source(small_trace());
    HeterogeneousPartitioner part;
    AdaptiveRuntime rt(cluster, source, part,
                       small_runtime(40, interval));
    return rt.run().sense_time;
  };
  EXPECT_GT(sense_time(5), sense_time(20));
}

TEST(AdaptiveRuntime, ValidatesConfig) {
  Cluster cluster = Cluster::homogeneous(2);
  TraceWorkloadSource source(small_trace());
  HeterogeneousPartitioner part;
  RuntimeConfig cfg = small_runtime(0, 0);
  EXPECT_THROW(AdaptiveRuntime(cluster, source, part, cfg), Error);
  cfg = small_runtime(10, -1);
  EXPECT_THROW(AdaptiveRuntime(cluster, source, part, cfg), Error);
}

TEST(AdaptiveRuntime, RegistryTracksTheCurrentDistribution) {
  Cluster cluster = Cluster::homogeneous(4);
  TraceWorkloadSource source(small_trace());
  HeterogeneousPartitioner part;
  RuntimeConfig cfg = small_runtime(10, 0);
  AdaptiveRuntime rt(cluster, source, part, cfg);
  const RunTrace t = rt.run();
  const Hdda& reg = rt.registry();
  EXPECT_GT(reg.size(), 0u);
  // Registry payload equals the last assignment's footprint, owner by
  // owner.
  std::int64_t total_bytes = 0;
  for (rank_t k = 0; k < 4; ++k) total_bytes += reg.bytes_on(k);
  std::int64_t expect = 0;
  const std::int64_t cell_bytes =
      static_cast<std::int64_t>(cfg.executor.ncomp) *
      cfg.executor.bytes_per_value * cfg.executor.time_levels;
  // Recompute from the recorded work: every cell of the composite list is
  // owned exactly once.
  TraceWorkloadSource source2(small_trace());
  const BoxList last = source2.boxes_for_regrid(
      static_cast<int>(t.regrids.size()) - 1);
  expect = last.total_cells() * cell_bytes;
  EXPECT_EQ(total_bytes, expect);
  // Every registered owner is a valid rank.
  for (const HddaEntry& e : reg.ordered_entries()) {
    EXPECT_GE(e.owner, 0);
    EXPECT_LT(e.owner, 4);
  }
}

TEST(AdaptiveRuntime, HysteresisFreezesCapacitiesUnderNoise) {
  auto senses_with = [](real_t threshold) {
    Cluster cluster = Cluster::homogeneous(2);
    TraceWorkloadSource source(small_trace());
    HeterogeneousPartitioner part;
    RuntimeConfig cfg = small_runtime(30, 5);
    cfg.monitor.noise.cpu_sigma = 0.10;  // jitter only, no real load
    cfg.sensing.capacity_change_threshold = threshold;
    AdaptiveRuntime rt(cluster, source, part, cfg);
    return rt.run();
  };
  const RunTrace frozen = senses_with(10.0);  // never adopt
  const RunTrace loose = senses_with(0.0);    // always adopt
  // With a huge threshold the capacities never change after the first
  // sweep; with zero threshold they jitter.
  for (std::size_t i = 1; i < frozen.senses.size(); ++i)
    EXPECT_EQ(frozen.senses[i].capacities, frozen.senses[0].capacities);
  bool changed = false;
  for (std::size_t i = 1; i < loose.senses.size(); ++i)
    if (loose.senses[i].capacities != loose.senses[0].capacities)
      changed = true;
  EXPECT_TRUE(changed);
}

TEST(SolverWorkloadSource, DrivesARealIntegration) {
  HierarchyConfig hc;
  hc.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(16, 8, 8), 0);
  hc.max_levels = 2;
  hc.ncomp = 1;
  hc.ghost = 1;
  hc.min_box_size = 2;
  GridHierarchy hier(hc);
  AdvectionOperator op(1, 0, 0, 0.3, 0.25, 0.25, 0.12);
  GradientFlagger fl(0, 0.08);
  IntegratorConfig ic;
  ic.dx0 = 1.0 / 16.0;
  ic.regrid_interval = 5;
  ic.cluster.min_box_size = 2;
  ic.cluster.small_box_cells = 8;
  BergerOliger bo(hier, op, fl, ic);
  SolverWorkloadSource source(bo, hier, /*steps_per_regrid=*/5);

  Cluster cluster = Cluster::homogeneous(2);
  HeterogeneousPartitioner part;
  RuntimeConfig cfg = small_runtime(15, 0);
  AdaptiveRuntime rt(cluster, source, part, cfg);
  const RunTrace t = rt.run();
  EXPECT_EQ(t.regrids.size(), 3u);
  EXPECT_GT(bo.step(), 5);  // the real solver actually advanced
  // The hierarchy refined around the blob at some point.
  EXPECT_GE(hier.num_levels(), 2);
}

}  // namespace
}  // namespace ssamr

// Tests for the space-filling-curve module: Morton, Hilbert, composite
// ordering.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "sfc/hilbert.hpp"
#include "sfc/morton.hpp"
#include "sfc/sfc_index.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ssamr {
namespace {

TEST(Morton, KnownValues) {
  EXPECT_EQ(morton_encode(0, 0, 0), 0u);
  EXPECT_EQ(morton_encode(1, 0, 0), 1u);
  EXPECT_EQ(morton_encode(0, 1, 0), 2u);
  EXPECT_EQ(morton_encode(0, 0, 1), 4u);
  EXPECT_EQ(morton_encode(1, 1, 1), 7u);
}

TEST(Morton, RoundtripRandom) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const IntVec p(rng.uniform_int(0, (1 << 21) - 1),
                   rng.uniform_int(0, (1 << 21) - 1),
                   rng.uniform_int(0, (1 << 21) - 1));
    EXPECT_EQ(morton_decode(morton_encode(p)), p);
  }
}

TEST(Morton, RejectsOutOfRange) {
  EXPECT_THROW(morton_encode(-1, 0, 0), Error);
  EXPECT_THROW(morton_encode(coord_t{1} << 21, 0, 0), Error);
}

TEST(Morton, OrderIsMonotoneInEachAxisBlock) {
  // Within one octant level, increasing a coordinate increases the key.
  EXPECT_LT(morton_encode(0, 0, 0), morton_encode(1, 0, 0));
  EXPECT_LT(morton_encode(1, 1, 1), morton_encode(2, 0, 0));
}

TEST(Hilbert, RoundtripExhaustiveSmall) {
  const int bits = 3;
  for (coord_t x = 0; x < 8; ++x)
    for (coord_t y = 0; y < 8; ++y)
      for (coord_t z = 0; z < 8; ++z) {
        const IntVec p(x, y, z);
        EXPECT_EQ(hilbert_decode(hilbert_encode(p, bits), bits), p);
      }
}

TEST(Hilbert, RoundtripRandomLargeBits) {
  Rng rng(17);
  const int bits = 16;
  for (int i = 0; i < 500; ++i) {
    const IntVec p(rng.uniform_int(0, (1 << bits) - 1),
                   rng.uniform_int(0, (1 << bits) - 1),
                   rng.uniform_int(0, (1 << bits) - 1));
    EXPECT_EQ(hilbert_decode(hilbert_encode(p, bits), bits), p);
  }
}

TEST(Hilbert, IsABijectionOnSmallCube) {
  const int bits = 2;
  std::set<key_t> keys;
  for (coord_t x = 0; x < 4; ++x)
    for (coord_t y = 0; y < 4; ++y)
      for (coord_t z = 0; z < 4; ++z)
        keys.insert(hilbert_encode(IntVec(x, y, z), bits));
  EXPECT_EQ(keys.size(), 64u);
  EXPECT_EQ(*keys.begin(), 0u);
  EXPECT_EQ(*keys.rbegin(), 63u);
}

TEST(Hilbert, ConsecutiveKeysAreFaceNeighbors) {
  // The defining property of the Hilbert curve.
  const int bits = 3;
  IntVec prev = hilbert_decode(0, bits);
  for (key_t k = 1; k < 512; ++k) {
    const IntVec cur = hilbert_decode(k, bits);
    const coord_t dist = std::abs(cur.x - prev.x) +
                         std::abs(cur.y - prev.y) +
                         std::abs(cur.z - prev.z);
    EXPECT_EQ(dist, 1) << "keys " << k - 1 << " -> " << k;
    prev = cur;
  }
}

TEST(Hilbert, RejectsBadArguments) {
  EXPECT_THROW(hilbert_encode(IntVec(0, 0, 0), 0), Error);
  EXPECT_THROW(hilbert_encode(IntVec(0, 0, 0), 22), Error);
  EXPECT_THROW(hilbert_encode(IntVec(-1, 0, 0), 4), Error);
  EXPECT_THROW(hilbert_encode(IntVec(16, 0, 0), 4), Error);
}

class SfcOrderTest : public ::testing::TestWithParam<CurveKind> {};

TEST_P(SfcOrderTest, OrderIsAPermutation) {
  SfcConfig cfg;
  cfg.curve = GetParam();
  cfg.finest_level = 2;
  std::vector<Box> boxes;
  for (coord_t i = 0; i < 4; ++i)
    for (coord_t j = 0; j < 4; ++j)
      boxes.push_back(Box::from_extent(IntVec(i * 8, j * 8, 0),
                                       IntVec(8, 8, 8), 0));
  const auto perm = sfc_order(boxes, cfg);
  ASSERT_EQ(perm.size(), boxes.size());
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), boxes.size());
}

TEST_P(SfcOrderTest, SpatiallyAdjacentBoxesLandNearby) {
  SfcConfig cfg;
  cfg.curve = GetParam();
  cfg.finest_level = 0;
  cfg.bits = 8;
  // A row of adjacent boxes must be ordered monotonically along the row.
  std::vector<Box> boxes;
  for (coord_t i = 0; i < 8; ++i)
    boxes.push_back(
        Box::from_extent(IntVec(i * 4, 0, 0), IntVec(4, 4, 4), 0));
  const auto perm = sfc_order(boxes, cfg);
  // The first and last box of the row must be at the ends of the order.
  EXPECT_TRUE(perm.front() == 0 || perm.front() == 7);
  EXPECT_TRUE(perm.back() == 0 || perm.back() == 7);
}

INSTANTIATE_TEST_SUITE_P(BothCurves, SfcOrderTest,
                         ::testing::Values(CurveKind::Morton,
                                           CurveKind::Hilbert));

TEST(SfcIndex, CrossLevelKeysInterleaveSpatially) {
  SfcConfig cfg;
  cfg.finest_level = 1;
  cfg.ratio = 2;
  // A fine box sitting inside a coarse box keys near that coarse box.
  const Box coarse_left = Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 0);
  const Box coarse_right =
      Box::from_extent(IntVec(24, 0, 0), IntVec(8, 8, 8), 0);
  const Box fine_left = Box::from_extent(IntVec(2, 2, 2), IntVec(8, 8, 8), 1);
  const key_t kl = sfc_box_key(coarse_left, cfg);
  const key_t kr = sfc_box_key(coarse_right, cfg);
  const key_t kf = sfc_box_key(fine_left, cfg);
  // fine_left's centroid is close to coarse_left's, far from coarse_right's.
  EXPECT_LT(std::llabs(static_cast<long long>(kf) -
                       static_cast<long long>(kl)),
            std::llabs(static_cast<long long>(kf) -
                       static_cast<long long>(kr)));
}

TEST(SfcIndex, RejectsEmptyAndTooDeepBoxes) {
  SfcConfig cfg;
  cfg.finest_level = 1;
  EXPECT_THROW(sfc_box_key(Box(), cfg), Error);
  EXPECT_THROW(
      sfc_box_key(Box(IntVec(0, 0, 0), IntVec(1, 1, 1), 2), cfg), Error);
}

TEST(SfcIndex, DeterministicOrder) {
  SfcConfig cfg;
  std::vector<Box> boxes{
      Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0),
      Box::from_extent(IntVec(8, 8, 8), IntVec(4, 4, 4), 0),
      Box::from_extent(IntVec(16, 0, 0), IntVec(4, 4, 4), 0)};
  EXPECT_EQ(sfc_order(boxes, cfg), sfc_order(boxes, cfg));
}

}  // namespace
}  // namespace ssamr

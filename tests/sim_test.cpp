// Unit tests of the discrete-event simulation core (src/sim): event-queue
// ordering, per-rank timelines, the fluid contention simulation and the
// directed traffic decompositions it consumes.

#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "partition/metrics.hpp"
#include "sim/executor.hpp"
#include "sim/event_queue.hpp"
#include "sim/message_sim.hpp"
#include "sim/timeline.hpp"
#include "util/error.hpp"

namespace ssamr::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> q;
  q.push(Seconds{3.0}, 30);
  q.push(Seconds{1.0}, 10);
  q.push(Seconds{2.0}, 20);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.next_time().value(), 1.0);
  EXPECT_EQ(q.pop().payload, 10);
  EXPECT_EQ(q.pop().payload, 20);
  EXPECT_EQ(q.pop().payload, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesPopInPushOrder) {
  EventQueue<int> q;
  for (int i = 0; i < 8; ++i) q.push(Seconds{1.5}, i);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(q.pop().payload, i);
}

TEST(EventQueue, EmptyQueueRejectsAccess) {
  EventQueue<int> q;
  EXPECT_THROW(q.next_time(), Error);
  EXPECT_THROW(q.pop(), Error);
}


// ---------------------------------------------------------------------------
// RetimableEventQueue: the indexed decrease-key heap under the fluid
// simulator.  Differential-tested against a brute-force reference (linear
// argmin over (time, sequence)) so the directional single-sift moves and
// the position map are exercised under random churn.

TEST(RetimableEventQueue, PopsInTimeOrderAndRetimesBothWays) {
  RetimableEventQueue q(4);
  q.schedule(Seconds{3.0}, 0);
  q.schedule(Seconds{1.0}, 1);
  q.schedule(Seconds{2.0}, 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.next_time().value(), 1.0);
  q.schedule(Seconds{0.5}, 0);  // decrease-key to the front
  EXPECT_EQ(q.pop(), 0u);
  q.schedule(Seconds{5.0}, 1);  // increase-key past the other entry
  EXPECT_EQ(q.pop(), 2u);
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_TRUE(q.empty());
}

TEST(RetimableEventQueue, EqualTimesPopInLatestScheduleOrder) {
  RetimableEventQueue q(3);
  q.schedule(Seconds{1.0}, 2);
  q.schedule(Seconds{1.0}, 0);
  q.schedule(Seconds{1.0}, 1);
  q.schedule(Seconds{1.0}, 2);  // re-stamp: now the freshest entry
  EXPECT_EQ(q.pop(), 0u);
  EXPECT_EQ(q.pop(), 1u);
  EXPECT_EQ(q.pop(), 2u);
}

TEST(RetimableEventQueue, CancelDropsOnlyTheTarget) {
  RetimableEventQueue q(3);
  q.schedule(Seconds{1.0}, 0);
  q.schedule(Seconds{2.0}, 1);
  q.schedule(Seconds{3.0}, 2);
  q.cancel(1);
  q.cancel(1);  // absent: no-op
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 0u);
  EXPECT_EQ(q.pop(), 2u);
  EXPECT_TRUE(q.empty());
}

TEST(RetimableEventQueue, MatchesBruteForceReferenceUnderChurn) {
  constexpr std::size_t kIds = 181;
  constexpr int kOps = 20000;
  RetimableEventQueue q(kIds);
  // Reference: per-id (time, stamp), argmin by (time, stamp) — the
  // documented pop order.  Stamps advance on every schedule call exactly
  // like the queue's internal sequence.
  struct Ref {
    bool live = false;
    double time = 0;
    std::uint64_t stamp = 0;
  };
  std::vector<Ref> ref(kIds);
  std::uint64_t next_stamp = 0;
  std::size_t live = 0;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;  // fixed-seed xorshift
  const auto rand_u32 = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return static_cast<std::uint32_t>(rng >> 32);
  };
  for (int op = 0; op < kOps; ++op) {
    const std::uint32_t r = rand_u32();
    const auto id = static_cast<std::size_t>(rand_u32() % kIds);
    if (r % 100 < 55) {
      // Times from a small lattice so equal-time ties actually occur.
      const double time = 0.125 * static_cast<double>(rand_u32() % 64);
      q.schedule(Seconds{time}, id);
      if (!ref[id].live) ++live;
      ref[id] = Ref{true, time, next_stamp++};
    } else if (r % 100 < 70) {
      q.cancel(id);
      if (ref[id].live) --live;
      ref[id].live = false;
    } else if (live > 0) {
      std::size_t best = kIds;
      for (std::size_t i = 0; i < kIds; ++i) {
        if (!ref[i].live) continue;
        if (best == kIds || ref[i].time < ref[best].time ||
            (ref[i].time == ref[best].time && ref[i].stamp < ref[best].stamp))
          best = i;
      }
      ASSERT_DOUBLE_EQ(q.next_time().value(), ref[best].time);
      ASSERT_EQ(q.pop(), best);
      ref[best].live = false;
      --live;
    }
    ASSERT_EQ(q.size(), live);
    ASSERT_EQ(q.empty(), live == 0);
  }
  // Drain: full agreement to the end.
  while (live > 0) {
    std::size_t best = kIds;
    for (std::size_t i = 0; i < kIds; ++i) {
      if (!ref[i].live) continue;
      if (best == kIds || ref[i].time < ref[best].time ||
          (ref[i].time == ref[best].time && ref[i].stamp < ref[best].stamp))
        best = i;
    }
    ASSERT_EQ(q.pop(), best);
    ref[best].live = false;
    --live;
  }
  EXPECT_TRUE(q.empty());
}

TEST(RetimableEventQueue, ResetReusesAcrossRuns) {
  RetimableEventQueue q;
  for (int run = 0; run < 3; ++run) {
    q.reset(8);
    EXPECT_TRUE(q.empty());
    for (std::size_t id = 0; id < 8; ++id)
      q.schedule(Seconds{static_cast<double>(7 - id)}, id);
    for (std::size_t id = 8; id-- > 0;) EXPECT_EQ(q.pop(), id);
  }
}

TEST(Timeline, BucketsSpansByKind) {
  RankTimeline tl(0);
  tl.advance(Seconds{1.0}, SpanKind::kCompute, 0);
  tl.advance(Seconds{1.5}, SpanKind::kComm, 0);
  tl.advance(Seconds{2.0}, SpanKind::kIdle, 0);
  tl.advance(Seconds{2.25}, SpanKind::kRegrid, 1);
  tl.advance(Seconds{2.75}, SpanKind::kMigrate);
  EXPECT_DOUBLE_EQ(tl.usage().busy_s.value(), 1.25);  // compute + regrid
  EXPECT_DOUBLE_EQ(tl.usage().comm_s.value(), 1.0);   // comm + migrate
  EXPECT_DOUBLE_EQ(tl.usage().idle_s.value(), 0.5);
  EXPECT_DOUBLE_EQ(tl.now().value(), 2.75);
  ASSERT_EQ(tl.spans().size(), 5u);
  EXPECT_EQ(tl.spans()[0].kind, SpanKind::kCompute);
  EXPECT_EQ(tl.spans()[0].iteration, 0);
  // Spans are contiguous: each begins where the previous ended.
  for (std::size_t i = 1; i < tl.spans().size(); ++i)
    EXPECT_DOUBLE_EQ(tl.spans()[i].t0.value(), tl.spans()[i - 1].t1.value());
}

TEST(Timeline, ZeroLengthAdvanceRecordsNothing) {
  RankTimeline tl(2);
  tl.advance(Seconds{1.0}, SpanKind::kCompute);
  tl.advance(Seconds{1.0}, SpanKind::kIdle);
  EXPECT_EQ(tl.spans().size(), 1u);
  EXPECT_THROW(tl.advance(Seconds{0.5}, SpanKind::kIdle), Error);
  EXPECT_THROW(tl.skip_to(Seconds{0.5}), Error);
}

TEST(MessageSim, SingleMessageMatchesClosedForm) {
  NetworkModel net;
  const std::vector<MbitsPerSec> bw = {MbitsPerSec{100.0},
                                       MbitsPerSec{100.0}};
  std::vector<Transfer> ts = {
      Transfer{0, 1, Bytes{1 << 20}, Seconds{2.0}, Seconds{0}}};
  simulate_transfers(ts, bw, net);
  // Alone on the wire, the fluid model reduces to transfer_time.
  EXPECT_NEAR(ts[0].finish_time.value(),
              2.0 + net.transfer_time(Bytes{1 << 20}, MbitsPerSec{100},
                                      MbitsPerSec{100})
                        .value(),
              1e-12);
}

TEST(MessageSim, ZeroByteTransferFinishesAtPostTime) {
  NetworkModel net;
  const std::vector<MbitsPerSec> bw = {MbitsPerSec{100.0},
                                       MbitsPerSec{100.0}};
  std::vector<Transfer> ts = {
      Transfer{0, 1, Bytes{0}, Seconds{3.5}, Seconds{0}}};
  simulate_transfers(ts, bw, net);
  EXPECT_DOUBLE_EQ(ts[0].finish_time.value(), 3.5);
}

TEST(MessageSim, ConcurrentSendsShareTheSourceNic) {
  NetworkModel net;
  net.latency_s = Seconds{0};
  net.efficiency = Fraction{1.0};
  const std::vector<MbitsPerSec> bw(4, MbitsPerSec{100.0});
  const Bytes bytes{1250000};  // 10^7 bits: 0.1 s alone
  // Rank 0 fans out to ranks 1 and 2 simultaneously: both halve rank 0's
  // bandwidth for their whole lifetime and finish together at 0.2 s.
  std::vector<Transfer> ts = {Transfer{0, 1, bytes, Seconds{0}, Seconds{0}},
                              Transfer{0, 2, bytes, Seconds{0}, Seconds{0}}};
  simulate_transfers(ts, bw, net);
  EXPECT_NEAR(ts[0].finish_time.value(), 0.2, 1e-9);
  EXPECT_NEAR(ts[1].finish_time.value(), 0.2, 1e-9);

  // Disjoint endpoint pairs do not contend: 0→1 and 2→3 each run at
  // full speed.
  std::vector<Transfer> free = {Transfer{0, 1, bytes, Seconds{0}, Seconds{0}},
                                Transfer{2, 3, bytes, Seconds{0}, Seconds{0}}};
  simulate_transfers(free, bw, net);
  EXPECT_NEAR(free[0].finish_time.value(), 0.1, 1e-9);
  EXPECT_NEAR(free[1].finish_time.value(), 0.1, 1e-9);
}

TEST(MessageSim, NicsAreFullDuplex) {
  NetworkModel net;
  net.latency_s = Seconds{0};
  net.efficiency = Fraction{1.0};
  const std::vector<MbitsPerSec> bw(2, MbitsPerSec{100.0});
  const Bytes bytes{1250000};  // 0.1 s alone
  // A symmetric exchange: 0→1 and 1→0 at once.  Each node sends on its tx
  // lane and receives on its rx lane, so neither message slows the other —
  // both finish at the single-message time, not double it.
  std::vector<Transfer> ts = {Transfer{0, 1, bytes, Seconds{0}, Seconds{0}},
                              Transfer{1, 0, bytes, Seconds{0}, Seconds{0}}};
  simulate_transfers(ts, bw, net);
  EXPECT_NEAR(ts[0].finish_time.value(), 0.1, 1e-9);
  EXPECT_NEAR(ts[1].finish_time.value(), 0.1, 1e-9);
}

TEST(MessageSim, StaggeredPostsReleaseBandwidth) {
  NetworkModel net;
  net.latency_s = Seconds{0};
  net.efficiency = Fraction{1.0};
  const std::vector<MbitsPerSec> bw(3, MbitsPerSec{100.0});
  const Bytes bytes{1250000};  // 0.1 s alone
  // Second transfer posts when the first is half done: they share for
  // 0.05 s + 0.05 s (first finishes at 0.15 having moved 0.05+0.05+0.05),
  // then the second runs alone.
  std::vector<Transfer> ts = {
      Transfer{0, 1, bytes, Seconds{0}, Seconds{0}},
      Transfer{0, 2, bytes, Seconds{0.05}, Seconds{0}}};
  simulate_transfers(ts, bw, net);
  EXPECT_GT(ts[0].finish_time, Seconds{0.1});  // slowed by the newcomer
  EXPECT_LT(ts[0].finish_time, Seconds{0.2});  // but not halved for life
  EXPECT_GT(ts[1].finish_time, ts[0].finish_time);
  // Total bits moved by rank 0 = 2 × 10^7 at ≤ 10^8 bit/s: at least 0.2 s
  // of wall-clock from the first post.
  EXPECT_GE(ts[1].finish_time, Seconds{0.2 - 1e-9});
}

TEST(MessageSim, LatencyDelaysNetworkEntryOncePerMessage) {
  NetworkModel net;
  net.latency_s = Seconds{0.01};
  net.efficiency = Fraction{1.0};
  const std::vector<MbitsPerSec> bw(2, MbitsPerSec{100.0});
  const Bytes bytes{1250000};
  std::vector<Transfer> ts = {Transfer{0, 1, bytes, Seconds{0}, Seconds{0}}};
  simulate_transfers(ts, bw, net);
  EXPECT_NEAR(ts[0].finish_time.value(), 0.01 + 0.1, 1e-9);
}

/// The historical O(T²) fluid loop: every event step scans ALL transfers,
/// skipping inactive ones.  The production simulator keeps an active-index
/// list instead; since that list stays sorted ascending, both visit
/// in-flight transfers in the same order and must produce bit-identical
/// finish times.
void reference_simulate(std::vector<Transfer>& transfers,
                        const std::vector<MbitsPerSec>& deliverable_mbps,
                        const NetworkModel& net) {
  const auto n = deliverable_mbps.size();
  std::vector<real_t> cap(n, 0);
  for (std::size_t k = 0; k < n; ++k)
    cap[k] =
        std::max(NetworkModel::kMinBandwidthMbps, deliverable_mbps[k]).value() *
        1.0e6 / 8.0;

  EventQueue<std::size_t> starts;
  std::vector<real_t> remaining(transfers.size(), 0);
  std::vector<char> active(transfers.size(), 0);
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    Transfer& tr = transfers[i];
    if (tr.bytes == Bytes{0} || tr.src == tr.dst) {
      tr.finish_time = tr.post_time;
      continue;
    }
    remaining[i] = static_cast<real_t>(tr.bytes.value());
    starts.push(tr.post_time + net.latency_s, i);
  }

  std::vector<int> tx_degree(n, 0);
  std::vector<int> rx_degree(n, 0);
  std::vector<real_t> rate(transfers.size(), 0);
  Seconds now{0};
  std::size_t n_active = 0;
  constexpr Seconds kInf{std::numeric_limits<real_t>::infinity()};

  while (n_active > 0 || !starts.empty()) {
    if (n_active == 0) now = std::max(now, starts.next_time());
    while (!starts.empty() && starts.next_time() <= now) {
      const std::size_t i = starts.pop().payload;
      active[i] = 1;
      ++n_active;
      ++tx_degree[static_cast<std::size_t>(transfers[i].src)];
      ++rx_degree[static_cast<std::size_t>(transfers[i].dst)];
    }
    Seconds dt_finish = kInf;
    std::size_t first_done = transfers.size();
    for (std::size_t i = 0; i < transfers.size(); ++i) {
      if (active[i] == 0) continue;
      const auto s = static_cast<std::size_t>(transfers[i].src);
      const auto d = static_cast<std::size_t>(transfers[i].dst);
      rate[i] = net.efficiency.value() *
                std::min(cap[s] / tx_degree[s], cap[d] / rx_degree[d]);
      const Seconds dt{remaining[i] / rate[i]};
      if (dt < dt_finish) {
        dt_finish = dt;
        first_done = i;
      }
    }
    const Seconds dt_start = starts.empty() ? kInf : starts.next_time() - now;
    const Seconds dt = std::min(dt_finish, dt_start);
    for (std::size_t i = 0; i < transfers.size(); ++i)
      if (active[i] != 0) remaining[i] -= rate[i] * dt.value();
    now += dt;
    if (dt_finish <= dt_start) {
      for (std::size_t i = 0; i < transfers.size(); ++i) {
        if (active[i] == 0) continue;
        if (i == first_done || remaining[i] <= 1e-6) {
          active[i] = 0;
          --n_active;
          --tx_degree[static_cast<std::size_t>(transfers[i].src)];
          --rx_degree[static_cast<std::size_t>(transfers[i].dst)];
          transfers[i].finish_time = now;
        }
      }
    }
  }
}

TEST(MessageSim, ActiveListMatchesFullScanReferenceBitExactly) {
  NetworkModel net;  // default latency and efficiency: realistic case
  const int nodes = 6;
  const std::vector<MbitsPerSec> bw = {MbitsPerSec{100.0}, MbitsPerSec{80.0},
                                       MbitsPerSec{120.0}, MbitsPerSec{60.0},
                                       MbitsPerSec{100.0}, MbitsPerSec{90.0}};
  // A deterministic pseudo-random mix: fan-outs, fan-ins, self/zero-byte
  // messages, staggered posts — enough churn that the active set turns
  // over many times.
  std::vector<Transfer> ts;
  std::uint64_t s = 12345;
  const auto next = [&s] {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 33;
  };
  for (int i = 0; i < 200; ++i) {
    Transfer t;
    t.src = static_cast<rank_t>(next() % nodes);
    t.dst = static_cast<rank_t>(next() % nodes);
    t.bytes = (next() % 5 == 0)
                  ? Bytes{0}
                  : Bytes{static_cast<std::int64_t>(1 + next() % 2000000)};
    t.post_time = Seconds{static_cast<real_t>(next() % 1000) * 0.01};
    ts.push_back(t);
  }
  std::vector<Transfer> fast = ts;
  std::vector<Transfer> slow = ts;
  simulate_transfers(fast, bw, net);
  reference_simulate(slow, bw, net);
  for (std::size_t i = 0; i < ts.size(); ++i)
    EXPECT_EQ(fast[i].finish_time, slow[i].finish_time) << "transfer " << i;
}

/// The 200-transfer churn mix from the reference test above, reused for
/// the indexed-simulator comparisons.
std::vector<Transfer> churn_mix(int nodes) {
  std::vector<Transfer> ts;
  std::uint64_t s = 12345;
  const auto next = [&s] {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 33;
  };
  for (int i = 0; i < 200; ++i) {
    Transfer t;
    t.src = static_cast<rank_t>(next() % nodes);
    t.dst = static_cast<rank_t>(next() % nodes);
    t.bytes = (next() % 5 == 0)
                  ? Bytes{0}
                  : Bytes{static_cast<std::int64_t>(1 + next() % 2000000)};
    t.post_time = Seconds{static_cast<real_t>(next() % 1000) * 0.01};
    ts.push_back(t);
  }
  return ts;
}

TEST(MessageSimIndexed, AgreesWithExactSimulatorToRounding) {
  // Same fluid model, different FP grouping: the indexed simulator settles
  // residuals lazily per lane instead of sweeping all active transfers, so
  // finish times agree to rounding but not bit-for-bit.
  NetworkModel net;
  const std::vector<MbitsPerSec> bw = {MbitsPerSec{100.0}, MbitsPerSec{80.0},
                                       MbitsPerSec{120.0}, MbitsPerSec{60.0},
                                       MbitsPerSec{100.0}, MbitsPerSec{90.0}};
  std::vector<Transfer> exact = churn_mix(6);
  std::vector<Transfer> indexed = exact;
  const std::size_t exact_events = simulate_transfers(exact, bw, net);
  const std::size_t indexed_events = simulate_transfers_indexed(indexed, bw,
                                                                net);
  EXPECT_EQ(exact_events, indexed_events);
  for (std::size_t i = 0; i < exact.size(); ++i)
    EXPECT_NEAR(indexed[i].finish_time.value(), exact[i].finish_time.value(),
                1e-6)
        << "transfer " << i;
}

TEST(MessageSimIndexed, IsDeterministic) {
  NetworkModel net;
  const std::vector<MbitsPerSec> bw(6, MbitsPerSec{100.0});
  std::vector<Transfer> a = churn_mix(6);
  std::vector<Transfer> b = a;
  EXPECT_EQ(simulate_transfers_indexed(a, bw, net),
            simulate_transfers_indexed(b, bw, net));
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].finish_time, b[i].finish_time) << "transfer " << i;
}

TEST(MessageSimIndexed, CountsTwoEventsPerNetworkTransfer) {
  // One admission + one completion per transfer that actually enters the
  // network; zero-byte and self transfers are free and uncounted.  Both
  // simulators must agree on the count.
  NetworkModel net;
  const std::vector<MbitsPerSec> bw(3, MbitsPerSec{100.0});
  std::vector<Transfer> ts = {
      Transfer{0, 1, Bytes{1 << 20}, Seconds{0}, Seconds{0}},
      Transfer{1, 2, Bytes{1 << 18}, Seconds{0.1}, Seconds{0}},
      Transfer{0, 0, Bytes{1 << 20}, Seconds{0}, Seconds{0}},  // self
      Transfer{2, 1, Bytes{0}, Seconds{0}, Seconds{0}}};       // empty
  std::vector<Transfer> ts2 = ts;
  EXPECT_EQ(simulate_transfers(ts, bw, net), 4u);
  EXPECT_EQ(simulate_transfers_indexed(ts2, bw, net), 4u);
}

TEST(MessageSimIndexed, FanOutContentionMatchesClosedForm) {
  // Two concurrent sends from one source: each sees half the tx lane, so
  // both finish in twice the solo time (plus latency) — same closed form
  // the exact path pins in ConcurrentSendsShareTheSourceNic.
  NetworkModel net;
  net.latency_s = Seconds{0};
  net.efficiency = Fraction{1.0};
  const std::vector<MbitsPerSec> bw(3, MbitsPerSec{100.0});
  const Bytes bytes{1250000};  // 0.1 s solo at 100 Mbit/s
  std::vector<Transfer> ts = {Transfer{0, 1, bytes, Seconds{0}, Seconds{0}},
                              Transfer{0, 2, bytes, Seconds{0}, Seconds{0}}};
  simulate_transfers_indexed(ts, bw, net);
  EXPECT_NEAR(ts[0].finish_time.value(), 0.2, 1e-9);
  EXPECT_NEAR(ts[1].finish_time.value(), 0.2, 1e-9);
}

PartitionResult two_adjacent_boxes() {
  PartitionResult r;
  r.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0), 0});
  r.assignments.push_back(
      {Box::from_extent(IntVec(4, 0, 0), IntVec(4, 4, 4), 0), 1});
  r.assigned_work = {64, 64};
  r.target_work = {64, 64};
  return r;
}

TEST(PairwiseComm, FlowsMatchAggregatePerRank) {
  const PartitionResult r = two_adjacent_boxes();
  const auto flows = pairwise_comm_bytes(r, /*ghost=*/1, /*ncomp=*/2);
  ASSERT_EQ(flows.size(), 2u);  // 0→1 and 1→0
  for (rank_t k = 0; k < 2; ++k) {
    std::int64_t incident = 0;
    for (const RankFlow& f : flows)
      if (f.src == k || f.dst == k) incident += f.bytes;
    EXPECT_EQ(incident, rank_comm_bytes(r, k, 1, 2));
  }
}

TEST(MigrationFlows, MatchAggregatePerRank) {
  Cluster cluster = Cluster::homogeneous(2);
  VirtualExecutor exec(cluster, ExecutorConfig{});
  const PartitionResult prev = two_adjacent_boxes();
  PartitionResult next = prev;
  std::swap(next.assignments[0].owner, next.assignments[1].owner);
  const auto flows = exec.migration_flows(prev, next);
  ASSERT_EQ(flows.size(), 2u);
  for (rank_t k = 0; k < 2; ++k) {
    std::int64_t incident = 0;
    for (const RankFlow& f : flows)
      if (f.src == k || f.dst == k) incident += f.bytes;
    EXPECT_EQ(Bytes{incident}, exec.migration_bytes(prev, next, k));
  }
  // Initial scatter: everything leaves rank 0.
  const auto scatter = exec.migration_flows(PartitionResult{}, next);
  for (const RankFlow& f : scatter) EXPECT_EQ(f.src, 0);
}

}  // namespace
}  // namespace ssamr::sim

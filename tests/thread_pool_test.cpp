// Unit tests for the work-stealing thread pool (util/thread_pool.hpp):
// task submission and stealing, exception propagation, nested parallelism,
// and the serial-path equivalence behind the determinism contract.
// This suite is part of the multithreaded set run under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace ssamr {
namespace {

TEST(ThreadPool, SerialPoolHasNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 0);
  EXPECT_EQ(pool.concurrency(), 1);
}

TEST(ThreadPool, SpawnsRequestedConcurrency) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 3);
  EXPECT_EQ(pool.concurrency(), 4);
}

TEST(ThreadPool, DefaultThreadCountHonoursEnv) {
  ::setenv("SSAMR_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3);
  ::setenv("SSAMR_THREADS", "1", 1);
  EXPECT_EQ(ThreadPool::default_thread_count(), 1);
  ::setenv("SSAMR_THREADS", "garbage", 1);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
  ::unsetenv("SSAMR_THREADS");
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
}

TEST(ThreadPool, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  constexpr int kTasks = 500;
  std::atomic<int> count{0};
  for (int i = 0; i < kTasks; ++i)
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  // The destructor drains the queues; but wait explicitly via a future so
  // the check does not depend on destruction order.
  auto fut = pool.async([] { return 42; });
  EXPECT_EQ(pool.wait(fut), 42);
  while (count.load() < kTasks) pool.run_one_task();
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPool, SubmitOnSerialPathRunsInline) {
  ThreadPool pool(1);
  int ran = 0;
  pool.submit([&ran] { ran = 1; });
  EXPECT_EQ(ran, 1);  // no workers: submit executes immediately
  EXPECT_FALSE(pool.run_one_task());
}

TEST(ThreadPool, AsyncReturnsValueThroughHelpingWait) {
  ThreadPool pool(2);
  auto fut = pool.async([] { return std::string("stolen"); });
  EXPECT_EQ(pool.wait(fut), "stolen");
}

TEST(ThreadPool, ParallelForCoversEachIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 10000;
  std::vector<int> hits(kN, 0);
  pool.parallel_for(kN, [&hits](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(kN));
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  try {
    pool.parallel_for(100, [&done](std::size_t i) {
      if (i == 37) throw std::runtime_error("boom at 37");
      done.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected the body's exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 37");
  }
  // The pool must still be usable after an aborted loop.
  std::atomic<int> after{0};
  pool.parallel_for(50, [&after](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 50);
}

TEST(ThreadPool, AsyncPropagatesExceptionThroughWait) {
  ThreadPool pool(2);
  auto fut = pool.async([]() -> int { throw std::logic_error("bad task"); });
  EXPECT_THROW(pool.wait(fut), std::logic_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 64;
  std::vector<std::vector<int>> grid(kOuter,
                                     std::vector<int>(kInner, 0));
  pool.parallel_for(kOuter, [&](std::size_t i) {
    pool.parallel_for(kInner, [&, i](std::size_t j) {
      grid[i][j] = static_cast<int>(i * kInner + j);
    });
  });
  for (std::size_t i = 0; i < kOuter; ++i)
    for (std::size_t j = 0; j < kInner; ++j)
      ASSERT_EQ(grid[i][j], static_cast<int>(i * kInner + j));
}

TEST(ThreadPool, TransformReduceOrderedMatchesSerialBitwise) {
  // A sum whose result depends on association order in floating point:
  // alternating large/small terms.  The ordered reduction must associate
  // exactly as the serial loop at every thread count.
  constexpr std::size_t kN = 4097;
  auto term = [](std::size_t i) {
    return (i % 2 == 0) ? 1.0e16 / static_cast<double>(i + 1)
                        : 1.0e-7 * static_cast<double>(i);
  };
  auto add = [](double a, double b) { return a + b; };

  ThreadPool serial(1);
  const double expected =
      serial.transform_reduce_ordered(kN, 0.0, term, add);
  for (int threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    const double got = pool.transform_reduce_ordered(kN, 0.0, term, add);
    EXPECT_EQ(got, expected) << "threads=" << threads;  // bitwise, not NEAR
  }
}

TEST(ThreadPool, ParallelForSerialEquivalence) {
  constexpr std::size_t kN = 1000;
  auto fill = [](ThreadPool& pool) {
    std::vector<double> out(kN);
    pool.parallel_for(kN, [&out](std::size_t i) {
      out[i] = std::sin(static_cast<double>(i)) * 1.0e5;
    });
    return out;
  };
  ThreadPool serial(1);
  ThreadPool wide(8);
  EXPECT_EQ(fill(serial), fill(wide));
}

TEST(ThreadPool, StressManySmallLoops) {
  ThreadPool pool(8);
  std::atomic<long> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(17, [&total](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200L * 17L);
}

TEST(ThreadPoolOverride, SwapsAndRestoresGlobal) {
  ThreadPool* before = &ThreadPool::global();
  {
    ThreadPoolOverride ov(2);
    EXPECT_EQ(&ThreadPool::global(), &ov.pool());
    EXPECT_EQ(ThreadPool::global().concurrency(), 2);
    {
      ThreadPoolOverride inner(1);
      EXPECT_EQ(&ThreadPool::global(), &inner.pool());
      EXPECT_EQ(ThreadPool::global().worker_count(), 0);
    }
    EXPECT_EQ(&ThreadPool::global(), &ov.pool());
  }
  EXPECT_EQ(&ThreadPool::global(), before);
}

}  // namespace
}  // namespace ssamr

// Tests for the synthetic SAMR workload trace.

#include <gtest/gtest.h>

#include "amr/trace_generator.hpp"
#include "amr/workload.hpp"
#include "geom/box_algebra.hpp"

namespace ssamr {
namespace {

TraceConfig small_trace() {
  TraceConfig cfg;
  cfg.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(32, 8, 8), 0);
  cfg.max_levels = 3;
  cfg.cluster.min_box_size = 2;
  cfg.cluster.small_box_cells = 16;
  return cfg;
}

TEST(SyntheticTrace, Deterministic) {
  SyntheticAmrTrace a(small_trace()), b(small_trace());
  for (int e : {0, 3, 9}) {
    const BoxList ba = a.boxes_at_epoch(e);
    const BoxList bb = b.boxes_at_epoch(e);
    ASSERT_EQ(ba.size(), bb.size());
    for (std::size_t i = 0; i < ba.size(); ++i) EXPECT_EQ(ba[i], bb[i]);
  }
}

TEST(SyntheticTrace, Level0IsAlwaysTheDomain) {
  SyntheticAmrTrace t(small_trace());
  for (int e = 0; e < 10; ++e) {
    const BoxList boxes = t.boxes_at_epoch(e);
    ASSERT_FALSE(boxes.empty());
    EXPECT_EQ(boxes[0], small_trace().domain);
  }
}

TEST(SyntheticTrace, ProducesRefinedLevels) {
  SyntheticAmrTrace t(small_trace());
  const BoxList boxes = t.boxes_at_epoch(0);
  level_t deepest = 0;
  for (const Box& b : boxes) deepest = std::max(deepest, b.level());
  EXPECT_EQ(deepest, 2);  // max_levels - 1
}

TEST(SyntheticTrace, BoxesStayInsideTheirLevelDomain) {
  SyntheticAmrTrace t(small_trace());
  for (int e = 0; e < 20; ++e) {
    for (const Box& b : t.boxes_at_epoch(e)) {
      const Box dom =
          b.level() == 0 ? small_trace().domain
                         : small_trace().domain.refined(2, b.level());
      EXPECT_TRUE(dom.contains(b)) << "epoch " << e << " box " << b;
    }
  }
}

TEST(SyntheticTrace, ProperNestingAcrossLevels) {
  SyntheticAmrTrace t(small_trace());
  for (int e : {0, 5, 12}) {
    const BoxList boxes = t.boxes_at_epoch(e);
    std::vector<Box> by_level[4];
    for (const Box& b : boxes)
      by_level[static_cast<std::size_t>(b.level())].push_back(b);
    for (level_t l = 2; l < 3; ++l) {
      for (const Box& b : by_level[static_cast<std::size_t>(l)]) {
        const Box coarse = b.coarsened(2);
        EXPECT_TRUE(
            box_difference(coarse, by_level[static_cast<std::size_t>(l - 1)])
                .empty())
            << "epoch " << e << " box " << b << " not nested";
      }
    }
  }
}

TEST(SyntheticTrace, SameLevelBoxesDisjoint) {
  SyntheticAmrTrace t(small_trace());
  for (int e : {0, 7}) {
    const BoxList boxes = t.boxes_at_epoch(e);
    EXPECT_FALSE(boxes.has_overlap());
  }
}

TEST(SyntheticTrace, InterfaceMovesAndReflects) {
  TraceConfig cfg = small_trace();
  cfg.speed = 0.1;
  SyntheticAmrTrace t(cfg);
  EXPECT_GT(t.interface_position(1), t.interface_position(0));
  // Over many epochs the position must stay within the reflecting margins.
  for (int e = 0; e < 100; ++e) {
    const real_t pos = t.interface_position(e);
    EXPECT_GE(pos, 0.05);
    EXPECT_LE(pos, 0.95);
  }
  // And it must actually come back down at some point (reflection).
  bool decreased = false;
  for (int e = 1; e < 50; ++e)
    if (t.interface_position(e) < t.interface_position(e - 1))
      decreased = true;
  EXPECT_TRUE(decreased);
}

TEST(SyntheticTrace, AmplitudeSaturationBoundsWork) {
  TraceConfig cfg = small_trace();
  cfg.growth = 0.5;
  cfg.max_amplitude = 1.0;
  SyntheticAmrTrace t(cfg);
  WorkModel wm;
  const real_t w10 = total_work(t.boxes_at_epoch(10), wm);
  const real_t w40 = total_work(t.boxes_at_epoch(40), wm);
  // After saturation the workload fluctuates but does not keep growing.
  EXPECT_LT(w40, w10 * 1.5);
}

TEST(SyntheticTrace, RejectsBadConfig) {
  TraceConfig cfg = small_trace();
  cfg.max_levels = 0;
  EXPECT_THROW(SyntheticAmrTrace{cfg}, Error);
  cfg = small_trace();
  cfg.band_halfwidth = 0;
  EXPECT_THROW(SyntheticAmrTrace{cfg}, Error);
  SyntheticAmrTrace ok(small_trace());
  EXPECT_THROW(ok.boxes_at_epoch(-1), Error);
}

TEST(WorkModel, BoxWorkScalesWithLevel) {
  const WorkModel wm{2, Work{1.0}};
  const Box c = Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0);
  const Box f = Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 2);
  EXPECT_DOUBLE_EQ(box_work(c, wm), 64.0);
  EXPECT_DOUBLE_EQ(box_work(f, wm), 64.0 * 4.0);  // updated r^l times
}

TEST(WorkModel, CostPerCellScalesLinearly) {
  const WorkModel wm{2, Work{2.5}};
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(2, 2, 2), 1);
  EXPECT_DOUBLE_EQ(box_work(b, wm), 8.0 * 2.0 * 2.5);
}

TEST(WorkModel, TotalAndPerBoxConsistent) {
  BoxList l;
  l.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(2, 2, 2), 0));
  l.push_back(Box::from_extent(IntVec(8, 0, 0), IntVec(2, 2, 2), 1));
  const WorkModel wm;
  const auto per = per_box_work(l, wm);
  ASSERT_EQ(per.size(), 2u);
  EXPECT_DOUBLE_EQ(per[0] + per[1], total_work(l, wm));
}

}  // namespace
}  // namespace ssamr

/// \file units_test.cpp
/// Laws of the dimensional types in util/units.hpp: the wrappers must be
/// representation-transparent (identical floating-point results, in the
/// same order, as the raw code they replaced), support exactly the
/// declared arithmetic, and reject everything else at compile time.

#include "util/units.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <type_traits>

using namespace ssamr;

namespace {

// ---- compile-time laws ----------------------------------------------------

// Construction is explicit in both directions: no silent raw<->typed flow.
static_assert(!std::is_convertible_v<real_t, Seconds>);
static_assert(!std::is_convertible_v<Seconds, real_t>);
static_assert(std::is_constructible_v<Seconds, real_t>);

// Cross-dimension addition/comparison must not compile.
static_assert(!std::is_invocable_v<std::plus<>, Seconds, Work>);
static_assert(!std::is_invocable_v<std::minus<>, Bytes, MegaBytes>);
static_assert(!std::is_invocable_v<std::less<>, Seconds, WorkRate>);
static_assert(!std::is_invocable_v<std::equal_to<>, Fraction, Percent>);

// Declared cross-dimension products/quotients resolve to the right types.
static_assert(std::is_same_v<decltype(Work{1} / WorkRate{1}), Seconds>);
static_assert(std::is_same_v<decltype(WorkRate{1} * Seconds{1}), Work>);
static_assert(std::is_same_v<decltype(Seconds{1} * WorkRate{1}), Work>);
static_assert(std::is_same_v<decltype(Work{1} / Seconds{1}), WorkRate>);
static_assert(std::is_same_v<decltype(Bytes{1} / BytesPerSec{1}), Seconds>);
static_assert(std::is_same_v<decltype(Bytes{1} / MbitsPerSec{1}), Seconds>);
static_assert(std::is_same_v<decltype(Seconds{1} / Seconds{1}), real_t>);
static_assert(std::is_same_v<decltype(Seconds{1} * Fraction{1}), Seconds>);
static_assert(std::is_same_v<decltype(Fraction{1} * MegaBytes{1}),
                             MegaBytes>);
static_assert(std::is_same_v<decltype(Fraction{1} * Fraction{1}), Fraction>);

// Undeclared cross-dimension products must not compile (e.g. nothing
// multiplies two times, and integer-rep Bytes cannot take a Fraction —
// the rounding has to be explicit at the call site).
static_assert(!std::is_invocable_v<std::multiplies<>, Seconds, Seconds>);
static_assert(!std::is_invocable_v<std::multiplies<>, Bytes, Fraction>);
static_assert(!std::is_invocable_v<std::divides<>, Seconds, Work>);

// The whole algebra is constexpr, so costs fold at compile time.
static_assert((Seconds{2.0} + Seconds{3.0}).value() == 5.0);
static_assert((WorkRate{4.0} * Seconds{2.0}).value() == 8.0);
static_assert(Work{6.0} / WorkRate{3.0} == Seconds{2.0});
static_assert(to_bytes_per_sec(MbitsPerSec{8.0}).value() == 1.0e6);
static_assert(Seconds{1.0} < Seconds{2.0});
static_assert(Bytes{1} + Bytes{2} == Bytes{3});

// Size/triviality: a Quantity is exactly its representation.
static_assert(sizeof(Seconds) == sizeof(real_t));
static_assert(sizeof(Bytes) == sizeof(std::int64_t));
static_assert(std::is_trivially_copyable_v<Seconds>);
static_assert(std::is_trivially_copyable_v<Bytes>);

// ---- representation transparency ------------------------------------------

TEST(Units, ArithmeticMatchesRawFloatingPointExactly) {
  const real_t a = 0.1, b = 0.2, s = 3.7;
  EXPECT_EQ((Seconds{a} + Seconds{b}).value(), a + b);
  EXPECT_EQ((Seconds{a} - Seconds{b}).value(), a - b);
  EXPECT_EQ((Seconds{a} * s).value(), a * s);
  EXPECT_EQ((s * Seconds{a}).value(), s * a);  // operand order preserved
  EXPECT_EQ((Seconds{a} / s).value(), a / s);
  EXPECT_EQ(Seconds{a} / Seconds{b}, a / b);
  EXPECT_EQ((-Seconds{a}).value(), -a);
}

TEST(Units, CompoundAssignmentMatchesRaw) {
  Seconds t{1.5};
  real_t raw = 1.5;
  t += Seconds{0.25};
  raw += 0.25;
  EXPECT_EQ(t.value(), raw);
  t -= Seconds{0.1};
  raw -= 0.1;
  EXPECT_EQ(t.value(), raw);
  t *= 3.0;
  raw *= 3.0;
  EXPECT_EQ(t.value(), raw);
  t /= 7.0;
  raw /= 7.0;
  EXPECT_EQ(t.value(), raw);
}

TEST(Units, FractionScalingKeepsDimensionAndOrder) {
  const Fraction f{0.3};
  const Seconds t{11.0};
  EXPECT_EQ((t * f).value(), t.value() * f.value());
  EXPECT_EQ((f * t).value(), f.value() * t.value());
  EXPECT_EQ((t / f).value(), t.value() / f.value());
  EXPECT_EQ((Fraction{0.5} * Fraction{0.25}).value(), 0.125);
}

TEST(Units, CrossDimensionOpsMatchTheCostModelFormulas) {
  const Work load{12345.0};
  const WorkRate rate{512.0};
  EXPECT_EQ((load / rate).value(), load.value() / rate.value());
  EXPECT_EQ((rate * (load / rate)).value(),
            rate.value() * (load.value() / rate.value()));
  EXPECT_EQ((load / Seconds{3.0}).value(), load.value() / 3.0);

  // Bytes over Mbit/s must reproduce the historical expression
  //   bytes * 8.0 / (mbps * 1.0e6)
  // term for term, so transfer times stay bit-identical.
  const Bytes bytes{1 << 20};
  const MbitsPerSec link{100.0};
  EXPECT_EQ((bytes / link).value(),
            static_cast<real_t>(bytes.value()) * 8.0 /
                (link.value() * 1.0e6));
  EXPECT_EQ((bytes / to_bytes_per_sec(link)).value(),
            static_cast<real_t>(bytes.value()) /
                (link.value() * 1.0e6 / 8.0));
  EXPECT_EQ(drained_bytes(BytesPerSec{125.0}, Seconds{2.0}), 250.0);
}

TEST(Units, IntegerBytesAreExact) {
  const Bytes big{(std::int64_t{1} << 53) + 1};  // not representable in double
  EXPECT_EQ((big + Bytes{1}).value(), (std::int64_t{1} << 53) + 2);
  EXPECT_EQ(Bytes{}.value(), 0);
  EXPECT_EQ((Bytes{10} / std::int64_t{4}).value(), 2);  // integer division
}

TEST(Units, ComparisonsAreTotalWithinADimension) {
  EXPECT_LT(Seconds{1.0}, Seconds{2.0});
  EXPECT_GE(Seconds{2.0}, Seconds{2.0});
  EXPECT_EQ(Work{5.0}, Work{5.0});
  EXPECT_NE(Work{5.0}, Work{6.0});
  const Seconds nan{std::numeric_limits<real_t>::quiet_NaN()};
  EXPECT_FALSE(nan == nan);  // IEEE semantics pass through untouched
}

TEST(Units, DefaultConstructionIsZero) {
  EXPECT_EQ(Seconds{}.value(), 0.0);
  EXPECT_EQ(Percent{}.value(), 0.0);
  EXPECT_EQ(Count{}.value(), 0);
}

}  // namespace

// Unit tests for src/util: RNG, statistics, table/CSV formatting, errors.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ssamr {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const real_t x = r.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const real_t x = r.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.push(r.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(17);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.push(r.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(RunningStats, EmptyIsNeutral) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (real_t x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.push(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.push(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Stats, MeanOfVector) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

TEST(Stats, StddevOfVector) {
  EXPECT_NEAR(stddev_of({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0),
              1e-12);
  EXPECT_DOUBLE_EQ(stddev_of({5.0}), 0.0);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median_of({}), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<real_t> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_of(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_of(v, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_of(v, 0.5), 5.0);
}

TEST(Stats, QuantileRejectsOutOfRange) {
  EXPECT_THROW(quantile_of({1.0}, 1.5), Error);
}

TEST(Stats, MseOfSeries) {
  EXPECT_DOUBLE_EQ(mse_of({1.0, 2.0}, {1.0, 4.0}), 2.0);
  EXPECT_THROW(mse_of({1.0}, {1.0, 2.0}), Error);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"a", "long_header"});
  t.add_row({"1", "2"});
  const std::string s = t.str();
  EXPECT_NE(s.find("a  long_header"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), Error);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_pct(0.18), "18.0%");
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Error, RequireThrowsWithMessage) {
  try {
    SSAMR_REQUIRE(false, "custom detail");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail"),
              std::string::npos);
  }
}

TEST(Logging, RespectsLevel) {
  std::ostringstream sink;
  Log::set_sink(&sink);
  Log::set_level(LogLevel::Warn);
  SSAMR_INFO << "hidden";
  SSAMR_WARN << "visible";
  Log::set_sink(nullptr);
  EXPECT_EQ(sink.str().find("hidden"), std::string::npos);
  EXPECT_NE(sink.str().find("visible"), std::string::npos);
}

}  // namespace
}  // namespace ssamr

#!/usr/bin/env python3
"""Hot-path benchmark regression gate.

Runs the google-benchmark binaries (bench_partitioners, bench_amr,
bench_faults and bench_scale by default), writes the raw measurements to
BENCH_pr.json, and compares them
against the committed baseline (tools/bench_baseline.json).

Raw nanoseconds are useless across machines, so each benchmark's time is
normalized by the geometric mean of all benchmark times *in the same run*
of its binary.  A real regression makes one benchmark slow relative to its
siblings and shows up as a normalized ratio > 1; a slower machine scales
every time equally and cancels out.  The gate fails when any benchmark's
normalized time exceeds the baseline by more than --threshold (default
15 %).

Usage:
  bench_check.py --bench-dir build/bench                 # check
  bench_check.py --bench-dir build/bench --update-baseline
"""

import argparse
import json
import math
import os
import subprocess
import sys

DEFAULT_BINARIES = ["bench_partitioners", "bench_amr", "bench_faults",
                    "bench_scale"]
BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "bench_baseline.json")


def run_binary(path, repetitions):
    """Run one benchmark binary, return {name: min real_time_ns}.

    The minimum over repetitions is the noise-robust statistic: scheduler
    interference and cache pollution only ever add time, so the fastest
    repetition is the closest to the code's true cost.
    """
    cmd = [
        path,
        "--benchmark_format=json",
        f"--benchmark_repetitions={repetitions}",
    ]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True, check=True)
    data = json.loads(proc.stdout)
    times = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("run_name", b["name"])
        t = float(b["real_time"])
        times[name] = min(times.get(name, t), t)
    if not times:
        raise RuntimeError(f"{path} produced no benchmark results")
    return times


def normalize(times):
    """Divide each time by the run's geometric mean."""
    logs = [math.log(t) for t in times.values() if t > 0]
    gmean = math.exp(sum(logs) / len(logs))
    return {name: t / gmean for name, t in times.items()}


def load_baseline(path):
    """Parse the committed baseline; returns (dict, None) or (None, error).

    A corrupted baseline must fail the gate with a message naming the file,
    not a JSON traceback — the fix is `--update-baseline`, and the error
    should say so.
    """
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        return None, f"cannot read baseline {path}: {e}"
    except json.JSONDecodeError as e:
        return None, (f"malformed baseline {path}: {e}; regenerate it "
                      "with --update-baseline")
    if not isinstance(data, dict) or not all(
            isinstance(v, dict) for v in data.values()):
        return None, (f"malformed baseline {path}: expected "
                      "{binary: {benchmark: normalized_time}}; regenerate "
                      "it with --update-baseline")
    return data, None


def gate(report, baseline, threshold, out=sys.stdout):
    """Compare a run report against the baseline.

    Returns the list of (binary, name, ratio) regressions beyond
    `threshold`.  Benchmarks absent from the baseline are announced but
    never fail the gate — a new benchmark has no history to regress from.
    """
    failures = []
    for binary, data in report["binaries"].items():
        base = baseline.get(binary, {})
        for name, norm in data["normalized"].items():
            if name not in base:
                out.write(f"  new benchmark (no baseline): "
                          f"{binary}:{name}\n")
                continue
            ratio = norm / base[name]
            marker = "REGRESSION" if ratio > 1 + threshold else "ok"
            out.write(f"  {binary}:{name}: normalized {norm:.3f} vs "
                      f"baseline {base[name]:.3f} ({ratio - 1:+.1%}) "
                      f"{marker}\n")
            if ratio > 1 + threshold:
                failures.append((binary, name, ratio))
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench-dir", required=True,
                    help="directory holding the benchmark binaries")
    ap.add_argument("--binaries", nargs="*", default=DEFAULT_BINARIES)
    ap.add_argument("--baseline", default=BASELINE)
    ap.add_argument("--output", default="BENCH_pr.json",
                    help="where to write this run's measurements")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed normalized-time increase (0.15 = 15%%)")
    ap.add_argument("--repetitions", type=int, default=5)
    ap.add_argument("--update-baseline", action="store_true")
    args = ap.parse_args()

    report = {"binaries": {}, "threshold": args.threshold}
    for binary in args.binaries:
        path = os.path.join(args.bench_dir, binary)
        if not os.path.exists(path):
            sys.stderr.write(f"missing benchmark binary: {path}\n")
            return 1
        times = run_binary(path, args.repetitions)
        report["binaries"][binary] = {
            "real_time_ns": times,
            "normalized": normalize(times),
        }

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"wrote {args.output}")

    if args.update_baseline:
        baseline = {
            binary: data["normalized"]
            for binary, data in report["binaries"].items()
        }
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
        print(f"updated {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        sys.stderr.write(
            f"no baseline at {args.baseline}; run with --update-baseline\n")
        return 1
    baseline, err = load_baseline(args.baseline)
    if err:
        sys.stderr.write(err + "\n")
        return 1

    failures = gate(report, baseline, args.threshold)
    if failures:
        sys.stderr.write(
            f"\n{len(failures)} hot-path regression(s) beyond "
            f"{args.threshold:.0%}:\n")
        for binary, name, ratio in failures:
            sys.stderr.write(f"  {binary}:{name} ({ratio - 1:+.1%})\n")
        return 1
    print("benchmark gate: no regressions beyond "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

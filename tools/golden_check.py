#!/usr/bin/env python3
"""Golden-file regression check for the experiment drivers.

Runs one experiment binary with a small, fixed trial count
(SSAMR_EXP_ITERS) and a scratch results directory (SSAMR_RESULTS_DIR),
then diffs the CSV it produced against the committed golden under
tests/golden/.  Numeric fields must agree within a relative tolerance
(default: exact, because the runtime is deterministic at any thread
count); non-numeric fields must match exactly.

Usage:
  golden_check.py --driver build/bench/exp_fig10 --csv fig10.csv \
      --golden tests/golden/fig10.csv [--iters 40] [--rtol 0]
"""

import argparse
import csv
import math
import os
import subprocess
import sys
import tempfile


def load_csv(path):
    with open(path, newline="") as f:
        return list(csv.reader(f))


def numeric(s):
    try:
        return float(s)
    except ValueError:
        return None


def diff_tables(got, want, rtol):
    """Return a list of human-readable mismatch descriptions."""
    errors = []
    if len(got) != len(want):
        errors.append(f"row count: got {len(got)}, golden {len(want)}")
    for r, (grow, wrow) in enumerate(zip(got, want)):
        if len(grow) != len(wrow):
            errors.append(f"row {r}: got {len(grow)} cols, golden {len(wrow)}")
            continue
        for c, (g, w) in enumerate(zip(grow, wrow)):
            gn, wn = numeric(g), numeric(w)
            if gn is not None and wn is not None:
                tol = rtol * max(abs(gn), abs(wn))
                if not math.isclose(gn, wn, rel_tol=rtol, abs_tol=tol + 1e-12):
                    errors.append(
                        f"row {r} col {c}: got {g}, golden {w} (rtol={rtol})")
            elif g != w:
                errors.append(f"row {r} col {c}: got {g!r}, golden {w!r}")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--driver", required=True,
                    help="experiment binary to run")
    ap.add_argument("--csv", required=True,
                    help="CSV filename the driver writes (basename)")
    ap.add_argument("--golden", required=True,
                    help="committed golden CSV to compare against")
    ap.add_argument("--iters", type=int, default=40,
                    help="SSAMR_EXP_ITERS for the run (default 40)")
    ap.add_argument("--threads", type=int, default=0,
                    help="SSAMR_THREADS for the run (0 = leave unset)")
    ap.add_argument("--rtol", type=float, default=0.0,
                    help="relative tolerance for numeric fields (default "
                         "0: bit-identical formatting expected)")
    ap.add_argument("--update", action="store_true",
                    help="regenerate the golden instead of checking")
    args = ap.parse_args()

    with tempfile.TemporaryDirectory(prefix="ssamr-golden-") as scratch:
        env = dict(os.environ)
        env["SSAMR_EXP_ITERS"] = str(args.iters)
        env["SSAMR_RESULTS_DIR"] = scratch
        if args.threads > 0:
            env["SSAMR_THREADS"] = str(args.threads)
        proc = subprocess.run([args.driver], env=env,
                              stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            sys.stderr.write(
                f"\ndriver {args.driver} exited {proc.returncode}\n")
            return 1

        produced = os.path.join(scratch, args.csv)
        if not os.path.exists(produced):
            sys.stderr.write(f"driver did not produce {produced}\n")
            return 1

        if args.update:
            os.makedirs(os.path.dirname(args.golden) or ".", exist_ok=True)
            with open(produced) as src, open(args.golden, "w") as dst:
                dst.write(src.read())
            print(f"updated {args.golden}")
            return 0

        errors = diff_tables(load_csv(produced), load_csv(args.golden),
                             args.rtol)
        if errors:
            sys.stderr.write(
                f"{args.csv} diverges from {args.golden} "
                f"({len(errors)} mismatches):\n")
            for e in errors[:20]:
                sys.stderr.write(f"  {e}\n")
            if len(errors) > 20:
                sys.stderr.write(f"  ... and {len(errors) - 20} more\n")
            return 1
        print(f"{args.csv}: matches golden ({args.iters} iters)")
        return 0


if __name__ == "__main__":
    sys.exit(main())

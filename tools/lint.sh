#!/usr/bin/env bash
# Lint gate for the ssamr library.
#
# Usage:
#   tools/lint.sh            # lint every src/ translation unit
#   tools/lint.sh FILES...   # lint only the given files (CI: changed files)
#
# Two layers:
#   1. grep-based bans that hold regardless of available tooling;
#   2. clang-tidy over the compile database (skipped with a notice when
#      clang-tidy is not installed — the CI lint job always has it).
#
# Exits non-zero on any violation.

set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# ---- 1. grep gates ---------------------------------------------------------
# Raw assert()/abort() are forbidden in src/: library invariants go through
# SSAMR_REQUIRE / SSAMR_ASSERT (util/error.hpp) so violations throw
# ssamr::Error — observable by callers and the test suite — instead of
# killing the process.  static_assert and the SSAMR_* macros do not match.
if grep -rnE '(^|[^A-Za-z0-9_.])(assert|abort)[[:space:]]*\(' src \
      --include='*.cpp' --include='*.hpp'; then
  echo "error: raw assert()/abort() in src/ — use SSAMR_REQUIRE / SSAMR_ASSERT (util/error.hpp)" >&2
  fail=1
fi

# Process-terminating calls hide failures from the virtual-time harness.
if grep -rnE '(^|[^A-Za-z0-9_.])(std::exit|std::_Exit|std::quick_exit|_exit)[[:space:]]*\(' src \
      --include='*.cpp' --include='*.hpp'; then
  echo "error: process-terminating call in src/ — throw ssamr::Error instead" >&2
  fail=1
fi

# ---- 2. clang-tidy ---------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  builddir=build
  if [ ! -f "${builddir}/compile_commands.json" ]; then
    cmake -B "${builddir}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  if [ "$#" -gt 0 ]; then
    files=("$@")
  else
    mapfile -t files < <(find src -name '*.cpp' | sort)
  fi
  # Only translation units appear in the compile database; headers are
  # covered through HeaderFilterRegex in .clang-tidy.
  tidy_files=()
  for f in "${files[@]}"; do
    case "$f" in
      *.cpp) tidy_files+=("$f") ;;
    esac
  done
  if [ "${#tidy_files[@]}" -gt 0 ]; then
    clang-tidy -p "${builddir}" --quiet --warnings-as-errors='*' \
      "${tidy_files[@]}" || fail=1
  fi
else
  echo "note: clang-tidy not found — skipping static analysis (grep gates still enforced)"
fi

exit "${fail}"

#!/usr/bin/env bash
# Lint gate for the ssamr library.
#
# Usage:
#   tools/lint.sh            # lint every src/ translation unit
#   tools/lint.sh FILES...   # lint only the given files (CI: changed files)
#
# Three layers:
#   1. grep-based bans that hold regardless of available tooling;
#   2. clang-tidy over the compile database (skipped with a notice when
#      clang-tidy is not installed — the CI lint job always has it);
#   3. tools/ssamr_lint.py, the project-specific concurrency/determinism
#      linter (libclang AST in CI, textual fallback elsewhere).
#
# Exits non-zero on any violation.

set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# ---- 1. grep gates ---------------------------------------------------------
# Raw assert()/abort() are forbidden in src/, tests/ and bench/: library
# invariants go through SSAMR_REQUIRE / SSAMR_ASSERT (util/error.hpp) so
# violations throw ssamr::Error — observable by callers and the test suite —
# instead of killing the process; tests use the gtest ASSERT_*/EXPECT_*
# macros.  static_assert and the SSAMR_*/gtest macros do not match.
if grep -rnE '(^|[^A-Za-z0-9_.])(assert|abort)[[:space:]]*\(' src tests bench \
      --include='*.cpp' --include='*.hpp'; then
  echo "error: raw assert()/abort() — use SSAMR_REQUIRE / SSAMR_ASSERT (util/error.hpp) or gtest macros" >&2
  fail=1
fi

# Process-terminating calls hide failures from the virtual-time harness (and
# from ctest, which would report a vanished process rather than a failure).
# Exception: src/net/proc_exit.hpp wraps ::_exit for forked rank processes
# of the proc backend, where exiting without unwinding or flushing the
# parent's stdio is exactly right; everything else goes through that seam
# (hard_exit) and the name does not match this pattern.
if grep -rnE '(^|[^A-Za-z0-9_.])(std::exit|std::_Exit|std::quick_exit|_exit)[[:space:]]*\(' src tests bench \
      --include='*.cpp' --include='*.hpp' --exclude='proc_exit.hpp'; then
  echo "error: process-terminating call — use net/proc_exit.hpp in forked children, throw ssamr::Error elsewhere" >&2
  fail=1
fi

# ---- 2. clang-tidy ---------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  builddir=build
  if [ ! -f "${builddir}/compile_commands.json" ]; then
    cmake -B "${builddir}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  if [ "$#" -gt 0 ]; then
    files=("$@")
  else
    mapfile -t files < <(find src -name '*.cpp' | sort)
  fi
  # Only translation units appear in the compile database; headers are
  # covered through HeaderFilterRegex in .clang-tidy.
  tidy_files=()
  for f in "${files[@]}"; do
    case "$f" in
      *.cpp) tidy_files+=("$f") ;;
    esac
  done
  if [ "${#tidy_files[@]}" -gt 0 ]; then
    clang-tidy -p "${builddir}" --quiet --warnings-as-errors='*' \
      "${tidy_files[@]}" || fail=1
  fi
else
  echo "note: clang-tidy not found — skipping static analysis (grep gates still enforced)"
fi

# ---- 3. project-specific AST linter ----------------------------------------
# Concurrency/determinism rules that grep cannot express: the std::mutex
# seam, wall-clock and randomness bans, unguarded float->int casts,
# unordered-container iteration into deterministic output, stray ThreadPool
# construction.  Uses libclang when python3-clang is installed (CI), a
# textual fallback otherwise; the fixture ctest pins both to the same
# verdicts.
if command -v python3 >/dev/null 2>&1; then
  python3 tools/ssamr_lint.py --check-fixtures tests/lint_fixtures || fail=1
  # The src/ gate also enforces the suppression-debt budget: every
  # `ssamr-lint: allow()` marker under src/ is counted per rule and the
  # totals must not exceed tools/suppression_budget.json.  The per-site
  # report lands in build/ for the CI artifact upload.
  python3 tools/ssamr_lint.py -p build \
    --budget tools/suppression_budget.json \
    --suppressions-out build/lint_suppressions.json \
    --timing-out build/lint_rule_timing.json || fail=1
else
  echo "note: python3 not found — skipping ssamr_lint.py"
fi

# ---- 4. architecture layering ----------------------------------------------
# The src/ include graph must stay a DAG that matches tools/layering.toml:
# every directory in a declared layer, every edge declared and pointing
# strictly downward, includes in canonical src-relative form.  Emits the
# graph (DOT; SVG when graphviz is installed) as a build artifact.  When
# python3 is missing, fall back to the one textual invariant grep can
# express — no quoted include may escape src/ with "..".
if command -v python3 >/dev/null 2>&1; then
  mkdir -p build
  python3 tools/ssamr_lint.py --layering \
    --emit-graph build/include_graph.dot \
    --timing-out build/lint_layering_timing.json || fail=1
else
  echo "note: python3 not found — textual layering fallback (\"..\" includes only)"
  if grep -rnE '#[[:space:]]*include[[:space:]]*"\.\.' src \
        --include='*.cpp' --include='*.hpp'; then
    echo "error: parent-relative include escapes the src/ layering" >&2
    fail=1
  fi
fi

exit "${fail}"

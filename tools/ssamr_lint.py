#!/usr/bin/env python3
"""ssamr_lint.py — project-specific AST linter for the ssamr library.

Enforces the concurrency/determinism invariants that the grep gates in
tools/lint.sh cannot express.  Two backends:

  * libclang (preferred, used by the CI clang job): walks the compile
    database and the real AST, so type-dependent rules (float->int casts,
    unordered-container iteration) are judged on actual types.
  * textual (fallback, zero dependencies): a comment/string-stripped token
    scan with local type heuristics.  Used wherever python3-clang or
    libclang is not installed; the fixture suite (tests/lint_fixtures)
    pins both backends to the same verdicts.

Rules (suppress a line with `// ssamr-lint: allow(<rule>)` on the line or
the line above):

  mutex-seam      std::mutex / std::lock_guard / std::unique_lock /
                  std::condition_variable (and friends), or a
                  no_thread_safety_analysis escape, outside
                  src/util/thread_safety.hpp.  Everything must go through
                  the annotated Mutex/MutexLock/CondVar so Clang's
                  -Wthread-safety analysis cannot be bypassed.
  rand            Nondeterministic randomness: std::rand, srand,
                  std::random_device.  Use util/rng.hpp (seeded splitmix64)
                  so traces stay bit-identical.
  clock           Wall-clock reads (system_clock / steady_clock /
                  high_resolution_clock / clock_gettime / gettimeofday)
                  outside the sanctioned seam src/util/wallclock.hpp.
                  Everything the library computes runs on virtual time.
                  Files that legitimately run on real time (the proc
                  execution backend measures actual processes) are listed
                  in tools/layering.toml [clock].allowed — a reviewed
                  allowance, not an inline suppression.
  unordered-iter  Iteration over std::unordered_map/set in a function that
                  feeds RunTrace, PartitionResult or CSV output: hash
                  order is not deterministic across libstdc++ versions.
  float-cast      float->int static_cast without an adjacent clamp/guard
                  (std::clamp/min/max or SSAMR_REQUIRE/SSAMR_ASSERT within
                  the five preceding lines, or a clamp inside the operand).
                  Casting an out-of-range double to an integer is UB — the
                  planes_for_target bug class.
  pool-ctor       ThreadPool construction outside src/util/ and tests/:
                  the library must share ThreadPool::global() (tests use
                  ThreadPoolOverride), or nested parallelism deadlocks
                  and thread counts stop honoring SSAMR_THREADS.
  raw-double-cost-api
                  Bare double/real_t/float parameter or return in a
                  function signature of a migrated cost-model header
                  (the [cost-api] list in tools/layering.toml).  Cost
                  quantities carry their dimension via util/units.hpp;
                  only the declared serialization-boundary files are
                  exempt.  Dimensionless collections
                  (std::vector<real_t>) do not match.
  narrowing-unit  static_cast to a unit type, or re-wrapping a
                  quantity's .value() in a unit constructor, outside the
                  seam src/util/units.hpp.  Scale changes between units
                  go through the named conversions in the seam so the
                  factors exist exactly once.

Architecture conformance (tools/layering.toml):

  tools/ssamr_lint.py --layering
      Build the directory-level include graph of src/ and fail on
      (a) include cycles, (b) edges not declared in [edges],
      (c) declared or actual edges that point upward in the [layers]
      order, (d) include hygiene (non-src-relative quoted includes,
      includes of .cpp files or nonexistent files).
      --emit-graph PATH writes the graph as Graphviz DOT (and renders
      an SVG next to it when `dot` is installed); --drop-edge A:B
      removes a declared edge first, which is how the negative ctest
      proves the gate can fail.

Usage:
  tools/ssamr_lint.py [-p BUILDDIR] [--backend auto|libclang|textual] [FILES...]
      Lint FILES, or (with no FILES) every src/ translation unit in the
      compile database plus every src/ header.
  tools/ssamr_lint.py --check-fixtures DIR
      Self-test: each fixture in DIR declares its expected findings with
      `// expect: <rule>` comments; assert the rule set fires exactly
      there and nowhere else.  Exits non-zero on any mismatch.
  tools/ssamr_lint.py --layering [--emit-graph DOT] [--drop-edge A:B]
      Architecture conformance against tools/layering.toml.

Every mode accepts --timing-out PATH to write a JSON artifact with the
wall time spent per rule (CI keeps these so lint cost regressions show
up in review).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
DEFAULT_CONFIG = REPO / "tools" / "layering.toml"

THREAD_SAFETY_SEAM = "util/thread_safety.hpp"
WALLCLOCK_SEAM = "util/wallclock.hpp"

RULES = {
    "mutex-seam": "raw std lock primitive outside util/thread_safety.hpp",
    "rand": "nondeterministic randomness (use util/rng.hpp)",
    "clock": "wall-clock read outside util/wallclock.hpp "
             "(or layering.toml [clock].allowed)",
    "unordered-iter":
        "unordered-container iteration feeding deterministic output",
    "float-cast": "float->int static_cast without adjacent clamp/guard",
    "pool-ctor": "ThreadPool construction outside util/ and tests/",
    "raw-double-cost-api":
        "bare double/real_t in a cost-model signature (use units.hpp types)",
    "narrowing-unit":
        "unit cast/re-wrap outside the util/units.hpp seam",
}

SUPPRESS_RE = re.compile(r"ssamr-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")

MUTEX_TOKENS = {
    "mutex", "timed_mutex", "recursive_mutex", "recursive_timed_mutex",
    "shared_mutex", "shared_timed_mutex", "lock_guard", "unique_lock",
    "scoped_lock", "shared_lock", "condition_variable",
    "condition_variable_any",
}
CLOCK_TOKENS = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "clock_gettime", "gettimeofday",
}
INT_DEST_RE = re.compile(
    r"\b(?:std::)?(?:u?int(?:8|16|32|64)?_t|int|long(?:\s+long)?"
    r"|short|unsigned(?:\s+(?:int|long|short|char))?|size_t|ptrdiff_t"
    r"|coord_t|key_t|level_t|rank_t|char)\b"
)
GUARD_RE = re.compile(
    r"std::clamp|std::min|std::max|SSAMR_REQUIRE|SSAMR_ASSERT")
FLOAT_MARK_RE = re.compile(
    r"\b(?:real_t|double|float)\b"
    r"|\bstd::(?:floor|ceil|round|lround|llround|rint|nearbyint|trunc"
    r"|sqrt|exp|log|pow|fmod|hypot|fabs)\b"
    r"|(?<![\w.])(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?")
FLOAT_DECL_FMT = r"\b(?:real_t|double|float)\b(?:\s+const\b)?[&*\s]+{name}\b"
SIZEOF_RE = re.compile(r"\bsizeof\s*\([^()]*\)")
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*"
    r"(?:const\s*)?[&*]?\s*(\w+)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;()]*(?:\([^()]*\)[^;()]*)*)\)")
OUTPUT_MARK_RE = re.compile(r"\bRunTrace\b|\bPartitionResult\b|\bCsvWriter\b")
POOL_CTOR_RE = re.compile(
    r"\bThreadPool\b\s*(?:\w+\s*)?[({]"
    r"|\bmake_(?:unique|shared)\s*<\s*ThreadPool\s*>")
GUARD_WINDOW = 5  # lines above a cast searched for a clamp/guard

# raw-double-cost-api: a floating return type at declaration position ...
RAW_RETURN_RE = re.compile(
    r"(?m)^\s*(?:\[\[nodiscard\]\]\s*)?"
    r"(?:(?:static|virtual|constexpr|inline|explicit|friend)\s+)*"
    r"(?:const\s+)?(real_t|double|float)\b[&\s]+"
    r"(~?\w+)\s*\(")
# ... and a parameter list of a declaration/definition (terminated by
# ';', '{' or '=', which excludes plain calls mid-expression).
FUNC_DECL_RE = re.compile(
    r"\b(\w+)\s*\(((?:[^()]|\([^()]*\))*)\)\s*"
    r"(?:const\b\s*)?(?:noexcept\b\s*)?(?:->[^;{]+)?[;{=]")
RAW_PARAM_RE = re.compile(r"^\s*(?:const\s+)?(real_t|double|float)\b")
NOT_A_FUNCTION = {"if", "for", "while", "switch", "catch", "return",
                  "sizeof", "do", "else", "new", "delete", "alignof",
                  "decltype", "static_assert"}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.M)


def load_config(path):
    """Parse tools/layering.toml.  Returns None (with a notice) when the
    file or tomllib is unavailable, which disables the config-driven
    rules rather than failing unrelated lint runs."""
    try:
        import tomllib
    except ImportError:
        print("note: tomllib unavailable — layering/units rules skipped",
              file=sys.stderr)
        return None
    path = Path(path)
    if not path.is_file():
        print(f"note: {path} not found — layering/units rules skipped",
              file=sys.stderr)
        return None
    with open(path, "rb") as fh:
        return tomllib.load(fh)


TIMINGS = {}


def timed(rule, fn, *args):
    t0 = time.perf_counter()
    try:
        return fn(*args)
    finally:
        TIMINGS[rule] = TIMINGS.get(rule, 0.0) + (time.perf_counter() - t0)


def write_timings(path, backend, nfiles):
    artifact = {
        "backend": backend,
        "files": nfiles,
        "timings_s": {k: round(v, 6) for k, v in sorted(TIMINGS.items())},
    }
    Path(path).write_text(json.dumps(artifact, indent=2) + "\n")


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (str(self.path), self.line, self.rule)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Shared text utilities


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving line
    structure so line numbers survive."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # inside a string/char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
                out.append(c)
            elif c == "\n":  # unterminated (raw string etc.) — bail per line
                state = None
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def suppressed_lines(raw_lines):
    """Map line number -> set of suppressed rules ('*' = all), honoring the
    same-line and line-above forms."""
    supp = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        supp.setdefault(idx, set()).update(rules)
        supp.setdefault(idx + 1, set()).update(rules)
    return supp


def rel_to_repo(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(REPO))
    except ValueError:
        return str(path)


class FileContext:
    """Everything the rules need to know about one file."""

    def __init__(self, path: Path, pretend_rel: str | None = None):
        self.path = path
        self.rel = pretend_rel if pretend_rel is not None else rel_to_repo(path)
        self.raw = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = self.raw.splitlines()
        self.stripped = strip_comments_and_strings(self.raw)
        self.lines = self.stripped.splitlines()
        self.suppress = suppressed_lines(self.raw_lines)

    def in_src(self):
        return self.rel.startswith("src/")

    def is_seam(self, seam):
        return self.rel == f"src/{seam}"

    def pool_ctor_allowed(self):
        return (self.rel.startswith("src/util/")
                or (self.rel.startswith("tests/")
                    and "lint_fixtures" not in self.rel))

    def suppressed(self, line, rule):
        rules = self.suppress.get(line, ())
        return rule in rules or "*" in rules


def function_spans(ctx: FileContext):
    """Approximate (start_line, end_line, text) spans of function bodies,
    header included.  Used by unordered-iter to judge whether the enclosing
    function feeds deterministic output."""
    spans = []
    text = ctx.stripped
    stmt_start = 0  # offset where the current statement/declarator began
    depth_stack = []  # (start_offset, is_function)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c in ";}" and not depth_stack:
            stmt_start = i + 1
        elif c == "{":
            header = text[stmt_start:i]
            first_word = re.match(r"\s*([A-Za-z_]\w*)", header)
            kw = first_word.group(1) if first_word else ""
            is_fn = ("(" in header and ")" in header
                     and kw not in ("if", "for", "while", "switch", "catch",
                                    "do", "else"))
            depth_stack.append((stmt_start if is_fn else i, is_fn))
            stmt_start = i + 1
        elif c == "}":
            if depth_stack:
                start, is_fn = depth_stack.pop()
                if is_fn and not any(fn for _, fn in depth_stack):
                    start_line = text.count("\n", 0, start) + 1
                    end_line = text.count("\n", 0, i) + 1
                    spans.append((start_line, end_line, text[start:i + 1]))
            stmt_start = i + 1
        i += 1
    return spans


def operand_of_cast(text: str, open_paren: int) -> str:
    """The parenthesized operand starting at text[open_paren] == '('."""
    depth = 0
    for j in range(open_paren, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:j]
    return text[open_paren + 1:]


def has_adjacent_guard(ctx: FileContext, line: int, operand: str) -> bool:
    if GUARD_RE.search(operand):
        return True
    lo = max(0, line - 1 - GUARD_WINDOW)
    window = "\n".join(ctx.lines[lo:line])
    return bool(GUARD_RE.search(window))


def operand_is_floating_textual(ctx: FileContext, operand: str, line: int,
                                spans) -> bool:
    # sizeof(real_t) is a size_t, not a float — drop it before testing.
    operand = SIZEOF_RE.sub("", operand)
    if FLOAT_MARK_RE.search(operand):
        return True
    # Resolve identifier types only inside the enclosing function (header
    # included) so a same-named variable in another scope cannot leak in.
    # File-scope casts fall back to a short preceding window.
    scope = None
    for start, end, text in spans:
        if start <= line <= end:
            scope = text
            break
    if scope is None:
        scope = "\n".join(ctx.lines[max(0, line - 11):line])
    for name in set(re.findall(r"\b[A-Za-z_]\w*\b", operand)):
        if name in ("std", "static_cast", "const", "auto"):
            continue
        if re.search(FLOAT_DECL_FMT.format(name=re.escape(name)), scope):
            return True
    return False


# --------------------------------------------------------------------------
# Rules shared by both backends (pure text, comment/string stripped)


def check_mutex_seam(ctx: FileContext, findings):
    if ctx.is_seam(THREAD_SAFETY_SEAM):
        return
    for idx, line in enumerate(ctx.lines, start=1):
        for tok in re.findall(r"std\s*::\s*([a-z_]+)", line):
            if tok in MUTEX_TOKENS:
                findings.append(Finding(
                    ctx.rel, idx, "mutex-seam",
                    f"std::{tok} outside util/thread_safety.hpp — use "
                    "the annotated Mutex/MutexLock/CondVar"))
                break
        if re.search(r"no_thread_safety_analysis"
                     r"|SSAMR_NO_THREAD_SAFETY_ANALYSIS", line):
            findings.append(Finding(
                ctx.rel, idx, "mutex-seam",
                "thread-safety-analysis escape outside "
                "util/thread_safety.hpp"))


def check_rand(ctx: FileContext, findings):
    for idx, line in enumerate(ctx.lines, start=1):
        if re.search(r"\b(?:std\s*::\s*)?s?rand\s*\(", line) or \
                re.search(r"\brandom_device\b", line):
            findings.append(Finding(
                ctx.rel, idx, "rand",
                "nondeterministic randomness — seed util/rng.hpp instead"))


def check_clock(ctx: FileContext, cfg, findings):
    if ctx.is_seam(WALLCLOCK_SEAM):
        return
    # The proc execution backend legitimately runs on wall time (real
    # sockets, real deadlines); tools/layering.toml [clock].allowed lists
    # the files granted direct clock reads so the sanctioned set is
    # reviewed config, not scattered suppressions.
    if cfg is not None and ctx.rel in cfg.get("clock", {}).get("allowed", ()):
        return
    for idx, line in enumerate(ctx.lines, start=1):
        for tok in CLOCK_TOKENS:
            if re.search(rf"\b{tok}\b", line):
                findings.append(Finding(
                    ctx.rel, idx, "clock",
                    f"{tok} outside util/wallclock.hpp — the library "
                    "runs on virtual time (real-time files go in "
                    "layering.toml [clock].allowed)"))
                break


def check_pool_ctor(ctx: FileContext, findings):
    if ctx.pool_ctor_allowed():
        return
    for idx, line in enumerate(ctx.lines, start=1):
        if POOL_CTOR_RE.search(line):
            findings.append(Finding(
                ctx.rel, idx, "pool-ctor",
                "ThreadPool constructed outside util//tests — use "
                "ThreadPool::global() (tests: ThreadPoolOverride)"))


def check_token_rules(ctx: FileContext, cfg, findings):
    if not ctx.in_src():
        return
    timed("mutex-seam", check_mutex_seam, ctx, findings)
    timed("rand", check_rand, ctx, findings)
    timed("clock", check_clock, ctx, cfg, findings)
    timed("pool-ctor", check_pool_ctor, ctx, findings)


# --------------------------------------------------------------------------
# Units rules (config-driven, shared by both backends): the cost-model
# dimensional-safety contract from tools/layering.toml.


def balanced_region(text: str, open_idx: int) -> str:
    """Content of the bracket pair opening at text[open_idx] ('(' or '{')."""
    open_c = text[open_idx]
    close_c = ")" if open_c == "(" else "}"
    depth = 0
    for j in range(open_idx, len(text)):
        if text[j] == open_c:
            depth += 1
        elif text[j] == close_c:
            depth -= 1
            if depth == 0:
                return text[open_idx + 1:j]
    return text[open_idx + 1:]


def split_params(s: str):
    """Split a parameter list at depth-0 commas (angle brackets counted so
    template arguments stay whole)."""
    parts, depth, cur = [], 0, []
    for c in s:
        if c in "<([{":
            depth += 1
        elif c in ">)]}":
            depth -= 1
        if c == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    if cur:
        parts.append("".join(cur))
    return parts


def check_raw_double_api(ctx: FileContext, cfg, findings):
    ca = (cfg or {}).get("cost-api", {})
    if ctx.rel not in set(ca.get("headers", ())) or \
            ctx.rel in set(ca.get("boundary", ())):
        return
    for m in RAW_RETURN_RE.finditer(ctx.stripped):
        line = ctx.stripped.count("\n", 0, m.start(1)) + 1
        findings.append(Finding(
            ctx.rel, line, "raw-double-cost-api",
            f"bare {m.group(1)} return in cost-model signature "
            f"'{m.group(2)}' — return a units.hpp type"))
    for m in FUNC_DECL_RE.finditer(ctx.stripped):
        name, params = m.group(1), m.group(2)
        if name in NOT_A_FUNCTION or not params.strip():
            continue
        for p in split_params(params):
            pm = RAW_PARAM_RE.match(p)
            if pm:
                line = ctx.stripped.count("\n", 0, m.start()) + 1
                findings.append(Finding(
                    ctx.rel, line, "raw-double-cost-api",
                    f"bare {pm.group(1)} parameter in cost-model signature "
                    f"'{name}' — take a units.hpp type"))
                break


def check_narrowing_unit(ctx: FileContext, cfg, findings):
    units = (cfg or {}).get("units", {})
    types = units.get("types", ())
    if not types or not ctx.in_src() or ctx.rel == units.get("seam"):
        return
    alt = "|".join(re.escape(t) for t in types)
    for m in re.finditer(
            rf"static_cast\s*<\s*(?:ssamr\s*::\s*)?({alt})\s*>",
            ctx.stripped):
        line = ctx.stripped.count("\n", 0, m.start()) + 1
        findings.append(Finding(
            ctx.rel, line, "narrowing-unit",
            f"static_cast to unit type {m.group(1)} outside units.hpp — "
            "use the named conversions in the seam"))
    for m in re.finditer(rf"\b({alt})\s*([({{])", ctx.stripped):
        inner = balanced_region(ctx.stripped, m.end() - 1)
        if not re.search(r"\.\s*value\s*\(", inner):
            continue
        line = ctx.stripped.count("\n", 0, m.start()) + 1
        findings.append(Finding(
            ctx.rel, line, "narrowing-unit",
            f"re-wrapping a quantity's .value() in {m.group(1)} outside "
            "units.hpp — convert through the seam or hoist the raw value "
            "to a named seam variable"))


def check_units_rules(ctx: FileContext, cfg, findings):
    timed("raw-double-cost-api", check_raw_double_api, ctx, cfg, findings)
    timed("narrowing-unit", check_narrowing_unit, ctx, cfg, findings)


# --------------------------------------------------------------------------
# Textual backend for the type-dependent rules


def check_float_cast_textual(ctx: FileContext, findings):
    if not ctx.in_src():
        return
    spans = function_spans(ctx)
    for m in re.finditer(r"static_cast\s*<([^<>]+)>\s*\(", ctx.stripped):
        dest = m.group(1).strip()
        if not INT_DEST_RE.fullmatch(dest):
            continue
        operand = operand_of_cast(ctx.stripped, m.end() - 1)
        line = ctx.stripped.count("\n", 0, m.start()) + 1
        if not operand_is_floating_textual(ctx, operand, line, spans):
            continue
        if has_adjacent_guard(ctx, line, operand):
            continue
        findings.append(Finding(
            ctx.rel, line, "float-cast",
            f"float->int static_cast<{dest}> without an adjacent "
            "clamp/guard (UB when out of range)"))


def check_unordered_iter_textual(ctx: FileContext, findings):
    if not ctx.in_src() or "unordered_" not in ctx.stripped:
        return
    unordered_names = set(UNORDERED_DECL_RE.findall(ctx.stripped))
    spans = function_spans(ctx)
    for m in RANGE_FOR_RE.finditer(ctx.stripped):
        header = m.group(1)
        if ":" not in header:
            continue
        range_expr = header.rsplit(":", 1)[1]
        names = set(re.findall(r"\b[A-Za-z_]\w*\b", range_expr))
        if "unordered_" not in range_expr and not (names & unordered_names):
            continue
        line = ctx.stripped.count("\n", 0, m.start()) + 1
        for start, end, text in spans:
            if start <= line <= end and OUTPUT_MARK_RE.search(text):
                findings.append(Finding(
                    ctx.rel, line, "unordered-iter",
                    "iteration over an unordered container in a function "
                    "feeding RunTrace/PartitionResult/CSV — hash order is "
                    "not deterministic"))
                break


def lint_file_textual(ctx: FileContext, cfg, findings):
    check_token_rules(ctx, cfg, findings)
    timed("float-cast", check_float_cast_textual, ctx, findings)
    timed("unordered-iter", check_unordered_iter_textual, ctx, findings)
    check_units_rules(ctx, cfg, findings)


# --------------------------------------------------------------------------
# libclang backend: token rules reuse the text layer (identical verdicts);
# the type-dependent rules use the real AST.


def load_cindex():
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    override = os.environ.get("SSAMR_LINT_LIBCLANG")
    if override:
        cindex.Config.set_library_file(override)
    try:
        cindex.Index.create()
    except Exception:
        for candidate in sorted(Path("/usr/lib").rglob("libclang-*.so*"),
                                reverse=True):
            try:
                cindex.Config.set_library_file(str(candidate))
                cindex.Index.create()
                break
            except Exception:
                cindex.Config.loaded = False
        else:
            return None
    return cindex


FLOATING_KINDS = None
INTEGRAL_KINDS = None


def init_type_kinds(cindex):
    global FLOATING_KINDS, INTEGRAL_KINDS
    tk = cindex.TypeKind
    FLOATING_KINDS = {tk.FLOAT, tk.DOUBLE, tk.LONGDOUBLE}
    INTEGRAL_KINDS = {
        tk.CHAR_U, tk.UCHAR, tk.USHORT, tk.UINT, tk.ULONG, tk.ULONGLONG,
        tk.CHAR_S, tk.SCHAR, tk.SHORT, tk.INT, tk.LONG, tk.LONGLONG,
    }


def expr_children(cindex, cursor):
    return [c for c in cursor.get_children()
            if c.kind.is_expression() or c.kind.is_statement()]


def enclosing_function_feeds_output(ctx, fn_cursor):
    if fn_cursor is None:
        return False
    extent = fn_cursor.extent
    text = "\n".join(
        ctx.lines[extent.start.line - 1:extent.end.line])
    return bool(OUTPUT_MARK_RE.search(text))


def check_ast_rules(cindex, ctx_by_path, cursor, fn_cursor, findings):
    ck = cindex.CursorKind
    if cursor.kind in (ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR,
                       ck.DESTRUCTOR, ck.FUNCTION_TEMPLATE, ck.LAMBDA_EXPR):
        if cursor.is_definition() or cursor.kind == ck.LAMBDA_EXPR:
            fn_cursor = cursor
    loc_file = cursor.location.file
    ctx = ctx_by_path.get(str(Path(loc_file.name).resolve())) if loc_file \
        else None
    if ctx is not None:
        if cursor.kind == ck.CXX_STATIC_CAST_EXPR:
            dest = cursor.type.get_canonical()
            operands = expr_children(cindex, cursor)
            src_type = None
            if operands:
                src_type = operands[-1].type.get_canonical()
            if (src_type is not None and src_type.kind in FLOATING_KINDS
                    and dest.kind in INTEGRAL_KINDS):
                line = cursor.extent.start.line
                end = min(cursor.extent.end.line, len(ctx.lines))
                operand_text = "\n".join(ctx.lines[line - 1:end])
                if not has_adjacent_guard(ctx, line, operand_text):
                    findings.append(Finding(
                        ctx.rel, line, "float-cast",
                        f"float->int static_cast<{cursor.type.spelling}> "
                        "without an adjacent clamp/guard (UB when out of "
                        "range)"))
        elif cursor.kind == ck.CXX_FOR_RANGE_STMT:
            range_types = [c.type.spelling for c in cursor.get_children()]
            if any("unordered_map" in t or "unordered_set" in t
                   or "unordered_multi" in t for t in range_types):
                if enclosing_function_feeds_output(ctx, fn_cursor):
                    findings.append(Finding(
                        ctx.rel, cursor.extent.start.line, "unordered-iter",
                        "iteration over an unordered container in a "
                        "function feeding RunTrace/PartitionResult/CSV — "
                        "hash order is not deterministic"))
    for child in cursor.get_children():
        check_ast_rules(cindex, ctx_by_path, child, fn_cursor, findings)


def lint_libclang(cindex, tus, ctx_by_path, cfg, findings):
    """tus: list of (main_file_path, compile_args)."""
    init_type_kinds(cindex)
    index = cindex.Index.create()
    for ctx in ctx_by_path.values():
        check_token_rules(ctx, cfg, findings)
        check_units_rules(ctx, cfg, findings)
    seen_tu_errors = []
    for path, args in tus:
        try:
            tu = index.parse(str(path), args=args)
        except cindex.TranslationUnitLoadError as e:
            seen_tu_errors.append(f"{path}: {e}")
            continue
        check_ast_rules(cindex, ctx_by_path, tu.cursor, None, findings)
    for err in seen_tu_errors:
        print(f"warning: libclang failed to parse {err}", file=sys.stderr)


# --------------------------------------------------------------------------
# Drivers


def compile_db_args(build_dir: Path):
    """Map resolved src file -> compile args (without -c/-o/the file)."""
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        return {}
    out = {}
    for entry in json.loads(db_path.read_text()):
        f = Path(entry["directory"], entry["file"]).resolve()
        args = entry.get("arguments")
        if args is None:
            args = entry.get("command", "").split()
        keep, skip_next = [], True  # first token is the compiler
        for a in args:
            if skip_next:
                skip_next = False
                continue
            if a in ("-c", "-o"):
                skip_next = a == "-o"
                continue
            if Path(a).resolve() == f if not a.startswith("-") else False:
                continue
            keep.append(a)
        out[f] = keep
    return out


def default_args():
    return ["-xc++", f"-std=c++20", "-I", str(SRC)]


def collect_findings(files, backend, build_dir, pretend=None, cfg=None):
    """files: list of Paths.  pretend: map Path -> pretend repo-relative
    path (fixture mode).  cfg: parsed tools/layering.toml (or None).
    Returns (findings, backend_used)."""
    ctx_by_path = {}
    for f in files:
        rp = pretend.get(f) if pretend else None
        ctx_by_path[str(f.resolve())] = FileContext(f, pretend_rel=rp)

    findings = []
    cindex = load_cindex() if backend in ("auto", "libclang") else None
    if backend == "libclang" and cindex is None:
        print("error: --backend=libclang requested but python clang "
              "bindings / libclang are unavailable", file=sys.stderr)
        sys.exit(2)

    if cindex is not None:
        db = compile_db_args(build_dir) if build_dir else {}
        tus = []
        for f in files:
            rf = f.resolve()
            if rf.suffix in (".cpp", ".cc", ".cxx"):
                tus.append((rf, db.get(rf, default_args())))
        headers_only = [f for f in files
                        if f.resolve().suffix in (".hpp", ".h")]
        # Headers not reached through any listed TU still get token rules
        # (already applied); AST rules need a TU, so parse headers directly.
        for h in headers_only:
            tus.append((h.resolve(), default_args()))
        lint_libclang(cindex, tus, ctx_by_path, cfg, findings)
        used = "libclang"
    else:
        for ctx in ctx_by_path.values():
            lint_file_textual(ctx, cfg, findings)
        used = "textual"

    kept, seen = [], set()
    for fd in findings:
        ctx = next((c for c in ctx_by_path.values() if c.rel == fd.path),
                   None)
        if ctx is not None and ctx.suppressed(fd.line, fd.rule):
            continue
        if fd.key() in seen:
            continue
        seen.add(fd.key())
        kept.append(fd)
    kept.sort(key=Finding.key)
    return kept, used


def default_file_set(build_dir):
    files = sorted(SRC.rglob("*.cpp")) + sorted(SRC.rglob("*.hpp"))
    return [f for f in files if f.is_file()]


def run_lint(args):
    files = [Path(f) for f in args.files] if args.files \
        else default_file_set(args.build)
    cfg = load_config(args.config)
    findings, used = collect_findings(files, args.backend, args.build,
                                      cfg=cfg)
    for fd in findings:
        print(fd)
    n = len(findings)
    print(f"ssamr_lint ({used} backend): {len(files)} files, "
          f"{n} finding{'s' if n != 1 else ''}", file=sys.stderr)
    if args.timing_out:
        write_timings(args.timing_out, used, len(files))
    return 1 if findings else 0


# --------------------------------------------------------------------------
# Architecture conformance: the include-graph layering gate


def scan_include_graph():
    """Scan src/ quoted includes.  Returns (dirs, edges, hygiene) where
    edges maps (from_dir, to_dir) -> [provenance strings] for cross-dir
    edges, and hygiene lists malformed includes."""
    dirs, edges, hygiene = set(), {}, []
    for f in sorted(SRC.rglob("*.cpp")) + sorted(SRC.rglob("*.hpp")):
        rel = f.relative_to(SRC)
        if len(rel.parts) < 2:
            continue  # no top-level src files today; nothing to attribute
        d = rel.parts[0]
        dirs.add(d)
        text = f.read_text(encoding="utf-8", errors="replace")
        for m in INCLUDE_RE.finditer(text):
            inc = m.group(1)
            site = f"src/{rel}:{text.count(chr(10), 0, m.start()) + 1}"
            if inc.startswith(("..", "/", "./")) or "\\" in inc:
                hygiene.append(f"{site}: non-canonical include \"{inc}\" — "
                               "quoted includes are src-relative")
                continue
            if "/" not in inc:
                hygiene.append(f"{site}: include \"{inc}\" must carry its "
                               f"directory (\"{d}/{inc}\")")
                continue
            if inc.endswith(".cpp"):
                hygiene.append(f"{site}: include of a translation unit "
                               f"\"{inc}\"")
                continue
            if not (SRC / inc).is_file():
                hygiene.append(f"{site}: include of nonexistent "
                               f"\"{inc}\"")
                continue
            tgt = inc.split("/")[0]
            if tgt != d:
                edges.setdefault((d, tgt), []).append(site)
    return dirs, edges, hygiene


def find_cycle(adj):
    """One cycle in adj (dir -> set of dirs), as a node list, or None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {n: WHITE for n in adj}
    stack = []

    def dfs(n):
        color[n] = GREY
        stack.append(n)
        for s in sorted(adj.get(n, ())):
            if color.get(s, WHITE) == GREY:
                return stack[stack.index(s):] + [s]
            if color.get(s, WHITE) == WHITE:
                cyc = dfs(s)
                if cyc:
                    return cyc
        stack.pop()
        color[n] = BLACK
        return None

    for n in sorted(adj):
        if color[n] == WHITE:
            cyc = dfs(n)
            if cyc:
                return cyc
    return None


def emit_dot(path, order, edges):
    lines = ["// Directory-level include graph of src/ — generated by",
             "// tools/ssamr_lint.py --emit-graph; layers from "
             "tools/layering.toml.",
             "digraph ssamr_includes {",
             "  rankdir=BT;",
             "  node [shape=box, fontname=\"Helvetica\"];"]
    for group in order:
        names = "; ".join(f'"{d}"' for d in group)
        lines.append(f"  {{ rank=same; {names}; }}")
    for (a, b), sites in sorted(edges.items()):
        lines.append(f'  "{a}" -> "{b}" [tooltip="{len(sites)} include(s)"];')
    lines.append("}")
    out = Path(path)
    out.write_text("\n".join(lines) + "\n")
    dot = shutil.which("dot")
    if dot:
        svg = out.with_suffix(".svg")
        subprocess.run([dot, "-Tsvg", str(out), "-o", str(svg)], check=False)
        print(f"include graph: {out} (rendered {svg})")
    else:
        print(f"include graph: {out} (graphviz `dot` not installed — "
              "textual DOT only)")


def run_layering(args):
    cfg = load_config(args.config)
    if cfg is None:
        print("error: --layering needs a readable config", file=sys.stderr)
        return 2
    order = cfg.get("layers", {}).get("order", [])
    layer_of = {d: i for i, group in enumerate(order) for d in group}
    declared = {(a, b)
                for a, targets in cfg.get("edges", {}).items()
                for b in targets}
    for spec in args.drop_edge or ():
        a, sep, b = spec.partition(":")
        if not sep or (a, b) not in declared:
            print(f"error: --drop-edge {spec}: no declared edge "
                  f"'{a} -> {b}' in {args.config}", file=sys.stderr)
            return 2
        declared.discard((a, b))

    problems = []
    for a, b in sorted(declared):
        if a not in layer_of:
            problems.append(f"[edges] source '{a}' is not in [layers].order")
        elif b not in layer_of:
            problems.append(f"[edges] target '{b}' is not in [layers].order")
        elif layer_of[b] >= layer_of[a]:
            problems.append(
                f"declared back-edge {a} -> {b}: '{b}' is not in a "
                f"strictly lower layer than '{a}'")

    dirs, edges, hygiene = timed("layering", scan_include_graph)
    problems.extend(hygiene)
    for d in sorted(dirs):
        if d not in layer_of:
            problems.append(f"src/{d}/ is not assigned to a layer in "
                            f"{args.config}")
    for (a, b), sites in sorted(edges.items()):
        if (a, b) not in declared:
            problems.append(
                f"undeclared include edge {a} -> {b} (first site "
                f"{sites[0]}) — declare it in [edges] of {args.config} "
                "or remove the include")
        elif layer_of.get(b, -1) >= layer_of.get(a, len(order)):
            problems.append(f"back-edge include {a} -> {b} at {sites[0]}")

    adj = {}
    for (a, b) in edges:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set())
    cyc = find_cycle(adj)
    if cyc:
        problems.append("include cycle: " + " -> ".join(cyc))

    unused = sorted(declared - set(edges))
    for a, b in unused:
        print(f"note: declared edge {a} -> {b} currently unused")

    if args.emit_graph:
        emit_dot(args.emit_graph, order, edges)
    for p in problems:
        print(f"layering: {p}")
    n = len(problems)
    print(f"ssamr_lint layering: {len(dirs)} directories, "
          f"{len(edges)} include edges, {n} problem{'s' if n != 1 else ''}",
          file=sys.stderr)
    if args.timing_out:
        write_timings(args.timing_out, "layering", len(dirs))
    return 1 if problems else 0


def run_check_fixtures(args):
    fixture_dir = Path(args.check_fixtures)
    fixtures = sorted(fixture_dir.glob("*.cpp")) + \
        sorted(fixture_dir.glob("*.hpp"))
    if not fixtures:
        print(f"error: no fixtures in {fixture_dir}", file=sys.stderr)
        return 2

    expected = set()
    pretend = {}
    for f in fixtures:
        pretend[f] = f"src/lint_fixtures/{f.name}"
        for idx, line in enumerate(f.read_text().splitlines(), start=1):
            m = EXPECT_RE.search(line)
            if m:
                for rule in (r.strip() for r in m.group(1).split(",")):
                    if rule not in RULES:
                        print(f"error: {f.name}:{idx} expects unknown rule "
                              f"'{rule}'", file=sys.stderr)
                        return 2
                    expected.add((pretend[f], idx, rule))

    findings, used = collect_findings(fixtures, args.backend, args.build,
                                      pretend=pretend,
                                      cfg=load_config(args.config))
    actual = {fd.key() for fd in findings}
    missing = expected - actual
    unexpected = actual - expected
    for path, line, rule in sorted(missing):
        print(f"FIXTURE MISMATCH: expected [{rule}] at {path}:{line} "
              "— did not fire")
    for path, line, rule in sorted(unexpected):
        print(f"FIXTURE MISMATCH: unexpected [{rule}] at {path}:{line}")
    fired_rules = {rule for _, _, rule in expected}
    silent = set(RULES) - fired_rules
    if silent:
        print(f"FIXTURE GAP: no fixture exercises rule(s): "
              f"{', '.join(sorted(silent))}")
    ok = not missing and not unexpected and not silent
    status = "ok" if ok else "FAILED"
    print(f"ssamr_lint fixtures ({used} backend): {len(fixtures)} files, "
          f"{len(expected)} expected findings — {status}")
    if args.timing_out:
        write_timings(args.timing_out, used, len(fixtures))
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", help="files to lint "
                    "(default: all of src/ via the compile database)")
    ap.add_argument("-p", "--build", type=Path, default=REPO / "build",
                    help="build dir holding compile_commands.json")
    ap.add_argument("--backend", choices=("auto", "libclang", "textual"),
                    default="auto")
    ap.add_argument("--check-fixtures", metavar="DIR",
                    help="self-test against a fixture directory")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--config", type=Path, default=DEFAULT_CONFIG,
                    help="layering/units configuration "
                    "(default: tools/layering.toml)")
    ap.add_argument("--layering", action="store_true",
                    help="check the src/ include graph against --config")
    ap.add_argument("--emit-graph", metavar="DOT",
                    help="with --layering: write the include graph as "
                    "Graphviz DOT (SVG too when `dot` exists)")
    ap.add_argument("--drop-edge", metavar="FROM:TO", action="append",
                    help="with --layering: pretend a declared edge is "
                    "absent (negative test of the gate)")
    ap.add_argument("--timing-out", metavar="JSON",
                    help="write per-rule wall-time JSON artifact")
    args = ap.parse_args()

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:16s} {desc}")
        return 0
    if args.layering:
        return run_layering(args)
    if args.check_fixtures:
        return run_check_fixtures(args)
    return run_lint(args)


if __name__ == "__main__":
    sys.exit(main())

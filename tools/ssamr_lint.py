#!/usr/bin/env python3
"""ssamr_lint.py — project-specific AST linter for the ssamr library.

Enforces the concurrency/determinism invariants that the grep gates in
tools/lint.sh cannot express.  Two backends:

  * libclang (preferred, used by the CI clang job): walks the compile
    database and the real AST, so type-dependent rules (float->int casts,
    unordered-container iteration) are judged on actual types.
  * textual (fallback, zero dependencies): a comment/string-stripped token
    scan with local type heuristics.  Used wherever python3-clang or
    libclang is not installed; the fixture suite (tests/lint_fixtures)
    pins both backends to the same verdicts.

Rules (suppress a line with `// ssamr-lint: allow(<rule>)` on the line or
the line above):

  mutex-seam      std::mutex / std::lock_guard / std::unique_lock /
                  std::condition_variable (and friends), or a
                  no_thread_safety_analysis escape, outside
                  src/util/thread_safety.hpp.  Everything must go through
                  the annotated Mutex/MutexLock/CondVar so Clang's
                  -Wthread-safety analysis cannot be bypassed.
  rand            Nondeterministic randomness: std::rand, srand,
                  std::random_device.  Use util/rng.hpp (seeded splitmix64)
                  so traces stay bit-identical.
  clock           Wall-clock reads (system_clock / steady_clock /
                  high_resolution_clock / clock_gettime / gettimeofday)
                  outside the sanctioned seam src/util/wallclock.hpp.
                  Everything the library computes runs on virtual time.
                  Files that legitimately run on real time (the proc
                  execution backend measures actual processes) are listed
                  in tools/layering.toml [clock].allowed — a reviewed
                  allowance, not an inline suppression.
  unordered-iter  Iteration over std::unordered_map/set in a function that
                  feeds RunTrace, PartitionResult or CSV output: hash
                  order is not deterministic across libstdc++ versions.
  float-cast      float->int static_cast without an adjacent clamp/guard
                  (std::clamp/min/max or SSAMR_REQUIRE/SSAMR_ASSERT within
                  the five preceding lines, or a clamp inside the operand).
                  Casting an out-of-range double to an integer is UB — the
                  planes_for_target bug class.
  pool-ctor       ThreadPool construction outside src/util/ and tests/:
                  the library must share ThreadPool::global() (tests use
                  ThreadPoolOverride), or nested parallelism deadlocks
                  and thread counts stop honoring SSAMR_THREADS.
  raw-double-cost-api
                  Bare double/real_t/float parameter or return in a
                  function signature of a migrated cost-model header
                  (the [cost-api] list in tools/layering.toml).  Cost
                  quantities carry their dimension via util/units.hpp;
                  only the declared serialization-boundary files are
                  exempt.  Dimensionless collections
                  (std::vector<real_t>) do not match.
  narrowing-unit  static_cast to a unit type, or re-wrapping a
                  quantity's .value() in a unit constructor, outside the
                  seam src/util/units.hpp.  Scale changes between units
                  go through the named conversions in the seam so the
                  factors exist exactly once.

Flow-sensitive rules (DESIGN.md §13): both backends share a statement-tree
CFG built from the comment/string-stripped text (python libclang does not
expose clang's CFG, and the textual backend has no AST at all), so the
verdicts are identical by construction:

  fd-lifecycle    a descriptor from ::socket/::socketpair/::accept/::open/
                  ::pipe/::dup must be closed or ownership-transferred on
                  every path out of the function (returns, throws, calls
                  that may unwind), and must be created CLOEXEC atomically
                  (SOCK_CLOEXEC / accept4 / O_CLOEXEC / pipe2), never via
                  a later fcntl.
  eintr-retry     raw ::read/::write/::poll/::waitpid/::connect outside
                  the sanctioned wrapper files (tools/layering.toml
                  [eintr].wrappers) are banned; inside a wrapper, every
                  raw call site must sit under a retry loop whose body
                  handles EINTR.
  lock-escape     a pointer/reference bound to an SSAMR_GUARDED_BY field
                  under a MutexLock must not outlive the lock scope (used
                  after the scope's closing brace, or returned) — the
                  escape hole Clang's thread-safety annotations don't
                  close.
  determinism-taint
                  values from util/wallclock.hpp, PhaseReport measured
                  wall fields, /proc reads, or other [taint].sources may
                  reach RankTimeline/CSV sinks ([taint].sinks) only
                  through a sanctioner ([taint].sanitizers — the
                  ProcOptions::to_virtual time_scale seam), so real time
                  can never leak into a golden-pinned trace un-normalized.

Suppressions are budgeted: `--budget tools/suppression_budget.json` fails
the run when the per-rule count of `ssamr-lint: allow(...)` markers under
src/ exceeds the checked-in budget, and `--suppressions-out` writes the
per-rule counts + sites as a JSON artifact.

Architecture conformance (tools/layering.toml):

  tools/ssamr_lint.py --layering
      Build the directory-level include graph of src/ and fail on
      (a) include cycles, (b) edges not declared in [edges],
      (c) declared or actual edges that point upward in the [layers]
      order, (d) include hygiene (non-src-relative quoted includes,
      includes of .cpp files or nonexistent files).
      --emit-graph PATH writes the graph as Graphviz DOT (and renders
      an SVG next to it when `dot` is installed); --drop-edge A:B
      removes a declared edge first, which is how the negative ctest
      proves the gate can fail.

Usage:
  tools/ssamr_lint.py [-p BUILDDIR] [--backend auto|libclang|textual] [FILES...]
      Lint FILES, or (with no FILES) every src/ translation unit in the
      compile database plus every src/ header.
  tools/ssamr_lint.py --check-fixtures DIR
      Self-test: each fixture in DIR declares its expected findings with
      `// expect: <rule>` comments; assert the rule set fires exactly
      there and nowhere else.  Exits non-zero on any mismatch.
  tools/ssamr_lint.py --layering [--emit-graph DOT] [--drop-edge A:B]
      Architecture conformance against tools/layering.toml.

Every mode accepts --timing-out PATH to write a JSON artifact with the
wall time spent per rule (CI keeps these so lint cost regressions show
up in review).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
DEFAULT_CONFIG = REPO / "tools" / "layering.toml"

THREAD_SAFETY_SEAM = "util/thread_safety.hpp"
WALLCLOCK_SEAM = "util/wallclock.hpp"

RULES = {
    "mutex-seam": "raw std lock primitive outside util/thread_safety.hpp",
    "rand": "nondeterministic randomness (use util/rng.hpp)",
    "clock": "wall-clock read outside util/wallclock.hpp "
             "(or layering.toml [clock].allowed)",
    "unordered-iter":
        "unordered-container iteration feeding deterministic output",
    "float-cast": "float->int static_cast without adjacent clamp/guard",
    "pool-ctor": "ThreadPool construction outside util/ and tests/",
    "raw-double-cost-api":
        "bare double/real_t in a cost-model signature (use units.hpp types)",
    "narrowing-unit":
        "unit cast/re-wrap outside the util/units.hpp seam",
    "fd-lifecycle":
        "fd not closed/transferred on every path, or not created CLOEXEC",
    "eintr-retry":
        "raw syscall outside the src/net seam, or not under an EINTR loop",
    "lock-escape":
        "pointer/ref to a GUARDED_BY field outliving its MutexLock scope",
    "determinism-taint":
        "measured wall clock reaching a trace/CSV sink unnormalized",
}

SUPPRESS_RE = re.compile(r"ssamr-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")

MUTEX_TOKENS = {
    "mutex", "timed_mutex", "recursive_mutex", "recursive_timed_mutex",
    "shared_mutex", "shared_timed_mutex", "lock_guard", "unique_lock",
    "scoped_lock", "shared_lock", "condition_variable",
    "condition_variable_any",
}
CLOCK_TOKENS = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "clock_gettime", "gettimeofday",
}
INT_DEST_RE = re.compile(
    r"\b(?:std::)?(?:u?int(?:8|16|32|64)?_t|int|long(?:\s+long)?"
    r"|short|unsigned(?:\s+(?:int|long|short|char))?|size_t|ptrdiff_t"
    r"|coord_t|key_t|level_t|rank_t|char)\b"
)
GUARD_RE = re.compile(
    r"std::clamp|std::min|std::max|SSAMR_REQUIRE|SSAMR_ASSERT")
FLOAT_MARK_RE = re.compile(
    r"\b(?:real_t|double|float)\b"
    r"|\bstd::(?:floor|ceil|round|lround|llround|rint|nearbyint|trunc"
    r"|sqrt|exp|log|pow|fmod|hypot|fabs)\b"
    r"|(?<![\w.])(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?")
FLOAT_DECL_FMT = r"\b(?:real_t|double|float)\b(?:\s+const\b)?[&*\s]+{name}\b"
SIZEOF_RE = re.compile(r"\bsizeof\s*\([^()]*\)")
UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*"
    r"(?:const\s*)?[&*]?\s*(\w+)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;()]*(?:\([^()]*\)[^;()]*)*)\)")
OUTPUT_MARK_RE = re.compile(r"\bRunTrace\b|\bPartitionResult\b|\bCsvWriter\b")
POOL_CTOR_RE = re.compile(
    r"\bThreadPool\b\s*(?:\w+\s*)?[({]"
    r"|\bmake_(?:unique|shared)\s*<\s*ThreadPool\s*>")
GUARD_WINDOW = 5  # lines above a cast searched for a clamp/guard

# raw-double-cost-api: a floating return type at declaration position ...
RAW_RETURN_RE = re.compile(
    r"(?m)^\s*(?:\[\[nodiscard\]\]\s*)?"
    r"(?:(?:static|virtual|constexpr|inline|explicit|friend)\s+)*"
    r"(?:const\s+)?(real_t|double|float)\b[&\s]+"
    r"(~?\w+)\s*\(")
# ... and a parameter list of a declaration/definition (terminated by
# ';', '{' or '=', which excludes plain calls mid-expression).
FUNC_DECL_RE = re.compile(
    r"\b(\w+)\s*\(((?:[^()]|\([^()]*\))*)\)\s*"
    r"(?:const\b\s*)?(?:noexcept\b\s*)?(?:->[^;{]+)?[;{=]")
RAW_PARAM_RE = re.compile(r"^\s*(?:const\s+)?(real_t|double|float)\b")
NOT_A_FUNCTION = {"if", "for", "while", "switch", "catch", "return",
                  "sizeof", "do", "else", "new", "delete", "alignof",
                  "decltype", "static_assert"}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.M)


def load_config(path):
    """Parse tools/layering.toml.  Returns None (with a notice) when the
    file or tomllib is unavailable, which disables the config-driven
    rules rather than failing unrelated lint runs."""
    try:
        import tomllib
    except ImportError:
        print("note: tomllib unavailable — layering/units rules skipped",
              file=sys.stderr)
        return None
    path = Path(path)
    if not path.is_file():
        print(f"note: {path} not found — layering/units rules skipped",
              file=sys.stderr)
        return None
    with open(path, "rb") as fh:
        return tomllib.load(fh)


TIMINGS = {}


def timed(rule, fn, *args):
    t0 = time.perf_counter()
    try:
        return fn(*args)
    finally:
        TIMINGS[rule] = TIMINGS.get(rule, 0.0) + (time.perf_counter() - t0)


def write_timings(path, backend, nfiles):
    artifact = {
        "backend": backend,
        "files": nfiles,
        "timings_s": {k: round(v, 6) for k, v in sorted(TIMINGS.items())},
    }
    Path(path).write_text(json.dumps(artifact, indent=2) + "\n")


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (str(self.path), self.line, self.rule)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Shared text utilities


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving line
    structure so line numbers survive."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # inside a string/char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
                out.append(c)
            elif c == "\n":  # unterminated (raw string etc.) — bail per line
                state = None
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def suppressed_lines(raw_lines):
    """Map line number -> set of suppressed rules ('*' = all), honoring the
    same-line and line-above forms."""
    supp = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",")}
        supp.setdefault(idx, set()).update(rules)
        supp.setdefault(idx + 1, set()).update(rules)
    return supp


def rel_to_repo(path: Path) -> str:
    try:
        return str(path.resolve().relative_to(REPO))
    except ValueError:
        return str(path)


class FileContext:
    """Everything the rules need to know about one file."""

    def __init__(self, path: Path, pretend_rel: str | None = None):
        self.path = path
        self.rel = pretend_rel if pretend_rel is not None else rel_to_repo(path)
        self.raw = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = self.raw.splitlines()
        self.stripped = strip_comments_and_strings(self.raw)
        self.lines = self.stripped.splitlines()
        self.suppress = suppressed_lines(self.raw_lines)

    def in_src(self):
        return self.rel.startswith("src/")

    def is_seam(self, seam):
        return self.rel == f"src/{seam}"

    def pool_ctor_allowed(self):
        return (self.rel.startswith("src/util/")
                or (self.rel.startswith("tests/")
                    and "lint_fixtures" not in self.rel))

    def suppressed(self, line, rule):
        rules = self.suppress.get(line, ())
        return rule in rules or "*" in rules


def function_spans(ctx: FileContext):
    """Approximate (start_line, end_line, text) spans of function bodies,
    header included.  Used by unordered-iter to judge whether the enclosing
    function feeds deterministic output."""
    spans = []
    text = ctx.stripped
    stmt_start = 0  # offset where the current statement/declarator began
    depth_stack = []  # (start_offset, is_function)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c in ";}" and not depth_stack:
            stmt_start = i + 1
        elif c == "{":
            header = text[stmt_start:i]
            first_word = re.match(r"\s*([A-Za-z_]\w*)", header)
            kw = first_word.group(1) if first_word else ""
            is_fn = ("(" in header and ")" in header
                     and kw not in ("if", "for", "while", "switch", "catch",
                                    "do", "else"))
            depth_stack.append((stmt_start if is_fn else i, is_fn))
            stmt_start = i + 1
        elif c == "}":
            if depth_stack:
                start, is_fn = depth_stack.pop()
                if is_fn and not any(fn for _, fn in depth_stack):
                    start_line = text.count("\n", 0, start) + 1
                    end_line = text.count("\n", 0, i) + 1
                    spans.append((start_line, end_line, text[start:i + 1]))
            stmt_start = i + 1
        i += 1
    return spans


def operand_of_cast(text: str, open_paren: int) -> str:
    """The parenthesized operand starting at text[open_paren] == '('."""
    depth = 0
    for j in range(open_paren, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:j]
    return text[open_paren + 1:]


def has_adjacent_guard(ctx: FileContext, line: int, operand: str) -> bool:
    if GUARD_RE.search(operand):
        return True
    lo = max(0, line - 1 - GUARD_WINDOW)
    window = "\n".join(ctx.lines[lo:line])
    return bool(GUARD_RE.search(window))


def operand_is_floating_textual(ctx: FileContext, operand: str, line: int,
                                spans) -> bool:
    # sizeof(real_t) is a size_t, not a float — drop it before testing.
    operand = SIZEOF_RE.sub("", operand)
    if FLOAT_MARK_RE.search(operand):
        return True
    # Resolve identifier types only inside the enclosing function (header
    # included) so a same-named variable in another scope cannot leak in.
    # File-scope casts fall back to a short preceding window.
    scope = None
    for start, end, text in spans:
        if start <= line <= end:
            scope = text
            break
    if scope is None:
        scope = "\n".join(ctx.lines[max(0, line - 11):line])
    for name in set(re.findall(r"\b[A-Za-z_]\w*\b", operand)):
        if name in ("std", "static_cast", "const", "auto"):
            continue
        if re.search(FLOAT_DECL_FMT.format(name=re.escape(name)), scope):
            return True
    return False


# --------------------------------------------------------------------------
# Rules shared by both backends (pure text, comment/string stripped)


def check_mutex_seam(ctx: FileContext, findings):
    if ctx.is_seam(THREAD_SAFETY_SEAM):
        return
    for idx, line in enumerate(ctx.lines, start=1):
        for tok in re.findall(r"std\s*::\s*([a-z_]+)", line):
            if tok in MUTEX_TOKENS:
                findings.append(Finding(
                    ctx.rel, idx, "mutex-seam",
                    f"std::{tok} outside util/thread_safety.hpp — use "
                    "the annotated Mutex/MutexLock/CondVar"))
                break
        if re.search(r"no_thread_safety_analysis"
                     r"|SSAMR_NO_THREAD_SAFETY_ANALYSIS", line):
            findings.append(Finding(
                ctx.rel, idx, "mutex-seam",
                "thread-safety-analysis escape outside "
                "util/thread_safety.hpp"))


def check_rand(ctx: FileContext, findings):
    for idx, line in enumerate(ctx.lines, start=1):
        if re.search(r"\b(?:std\s*::\s*)?s?rand\s*\(", line) or \
                re.search(r"\brandom_device\b", line):
            findings.append(Finding(
                ctx.rel, idx, "rand",
                "nondeterministic randomness — seed util/rng.hpp instead"))


def check_clock(ctx: FileContext, cfg, findings):
    if ctx.is_seam(WALLCLOCK_SEAM):
        return
    # The proc execution backend legitimately runs on wall time (real
    # sockets, real deadlines); tools/layering.toml [clock].allowed lists
    # the files granted direct clock reads so the sanctioned set is
    # reviewed config, not scattered suppressions.
    if cfg is not None and ctx.rel in cfg.get("clock", {}).get("allowed", ()):
        return
    for idx, line in enumerate(ctx.lines, start=1):
        for tok in CLOCK_TOKENS:
            if re.search(rf"\b{tok}\b", line):
                findings.append(Finding(
                    ctx.rel, idx, "clock",
                    f"{tok} outside util/wallclock.hpp — the library "
                    "runs on virtual time (real-time files go in "
                    "layering.toml [clock].allowed)"))
                break


def check_pool_ctor(ctx: FileContext, findings):
    if ctx.pool_ctor_allowed():
        return
    for idx, line in enumerate(ctx.lines, start=1):
        if POOL_CTOR_RE.search(line):
            findings.append(Finding(
                ctx.rel, idx, "pool-ctor",
                "ThreadPool constructed outside util//tests — use "
                "ThreadPool::global() (tests: ThreadPoolOverride)"))


def check_token_rules(ctx: FileContext, cfg, findings):
    if not ctx.in_src():
        return
    timed("mutex-seam", check_mutex_seam, ctx, findings)
    timed("rand", check_rand, ctx, findings)
    timed("clock", check_clock, ctx, cfg, findings)
    timed("pool-ctor", check_pool_ctor, ctx, findings)


# --------------------------------------------------------------------------
# Units rules (config-driven, shared by both backends): the cost-model
# dimensional-safety contract from tools/layering.toml.


def balanced_region(text: str, open_idx: int) -> str:
    """Content of the bracket pair opening at text[open_idx] ('(' or '{')."""
    open_c = text[open_idx]
    close_c = ")" if open_c == "(" else "}"
    depth = 0
    for j in range(open_idx, len(text)):
        if text[j] == open_c:
            depth += 1
        elif text[j] == close_c:
            depth -= 1
            if depth == 0:
                return text[open_idx + 1:j]
    return text[open_idx + 1:]


def split_params(s: str):
    """Split a parameter list at depth-0 commas (angle brackets counted so
    template arguments stay whole)."""
    parts, depth, cur = [], 0, []
    for c in s:
        if c in "<([{":
            depth += 1
        elif c in ">)]}":
            depth -= 1
        if c == "," and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    if cur:
        parts.append("".join(cur))
    return parts


def check_raw_double_api(ctx: FileContext, cfg, findings):
    ca = (cfg or {}).get("cost-api", {})
    if ctx.rel not in set(ca.get("headers", ())) or \
            ctx.rel in set(ca.get("boundary", ())):
        return
    for m in RAW_RETURN_RE.finditer(ctx.stripped):
        line = ctx.stripped.count("\n", 0, m.start(1)) + 1
        findings.append(Finding(
            ctx.rel, line, "raw-double-cost-api",
            f"bare {m.group(1)} return in cost-model signature "
            f"'{m.group(2)}' — return a units.hpp type"))
    for m in FUNC_DECL_RE.finditer(ctx.stripped):
        name, params = m.group(1), m.group(2)
        if name in NOT_A_FUNCTION or not params.strip():
            continue
        for p in split_params(params):
            pm = RAW_PARAM_RE.match(p)
            if pm:
                line = ctx.stripped.count("\n", 0, m.start()) + 1
                findings.append(Finding(
                    ctx.rel, line, "raw-double-cost-api",
                    f"bare {pm.group(1)} parameter in cost-model signature "
                    f"'{name}' — take a units.hpp type"))
                break


def check_narrowing_unit(ctx: FileContext, cfg, findings):
    units = (cfg or {}).get("units", {})
    types = units.get("types", ())
    if not types or not ctx.in_src() or ctx.rel == units.get("seam"):
        return
    alt = "|".join(re.escape(t) for t in types)
    for m in re.finditer(
            rf"static_cast\s*<\s*(?:ssamr\s*::\s*)?({alt})\s*>",
            ctx.stripped):
        line = ctx.stripped.count("\n", 0, m.start()) + 1
        findings.append(Finding(
            ctx.rel, line, "narrowing-unit",
            f"static_cast to unit type {m.group(1)} outside units.hpp — "
            "use the named conversions in the seam"))
    for m in re.finditer(rf"\b({alt})\s*([({{])", ctx.stripped):
        inner = balanced_region(ctx.stripped, m.end() - 1)
        if not re.search(r"\.\s*value\s*\(", inner):
            continue
        line = ctx.stripped.count("\n", 0, m.start()) + 1
        findings.append(Finding(
            ctx.rel, line, "narrowing-unit",
            f"re-wrapping a quantity's .value() in {m.group(1)} outside "
            "units.hpp — convert through the seam or hoist the raw value "
            "to a named seam variable"))


def check_units_rules(ctx: FileContext, cfg, findings):
    timed("raw-double-cost-api", check_raw_double_api, ctx, cfg, findings)
    timed("narrowing-unit", check_narrowing_unit, ctx, cfg, findings)


# --------------------------------------------------------------------------
# Flow-sensitive engine (DESIGN.md §13).
#
# A statement-tree CFG is parsed out of the comment/string-stripped text of
# each function body (function_spans provides the bodies).  Both backends
# run the same analyses over the same tree: the python libclang bindings do
# not expose clang's CFG, and building the tree from text keeps the
# textual/libclang verdicts identical by construction — which the fixture
# self-test then pins.
#
# The tree is deliberately small: if/else, loops (while/for/do; switch and
# try/catch degrade to linear blocks), and simple statements.  Loops are
# analyzed as execute-0-or-1-times, which is sound for the must-close and
# taint lattices used here (no fact becomes *more* true with iteration
# count).


class Stmt:
    __slots__ = ("kind", "text", "line", "children", "else_children",
                 "cond", "start", "end")

    def __init__(self, kind, text, line, start, end,
                 children=None, else_children=None, cond=""):
        self.kind = kind          # 'if' | 'loop' | 'block' | 'simple'
        self.text = text
        self.line = line
        self.start = start        # [start, end) offsets into the span text
        self.end = end
        self.children = children or []
        self.else_children = else_children  # None = no else clause
        self.cond = cond


def _match_paren(text, i):
    """Index just past the ')' matching text[i] == '('."""
    depth = 0
    for j in range(i, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return j + 1
    return len(text)


def _simple_end(text, i):
    """End of a simple statement starting at i: the first ';' at bracket
    depth 0 (parens/braces/brackets balanced, so brace-init and lambdas
    stay inside the statement)."""
    depth = 0
    for j in range(i, len(text)):
        c = text[j]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            if depth == 0:
                return j  # stray closer: the enclosing block's brace
            depth -= 1
        elif c == ";" and depth == 0:
            return j + 1
    return len(text)


def _parse_seq(text, i, line_of):
    """Parse statements until the enclosing '}' (consumed) or EOF.
    Returns (stmts, next_index)."""
    stmts = []
    n = len(text)
    while i < n:
        while i < n and text[i] in " \t\r\n":
            i += 1
        if i >= n:
            break
        if text[i] == "}":
            return stmts, i + 1
        st, i2 = _parse_one(text, i, line_of)
        if i2 <= i:  # malformed input; never loop forever
            i2 = i + 1
        i = i2
        if st is not None:
            stmts.append(st)
    return stmts, i


def _parse_body(text, i, line_of):
    """A statement body: either a braced block or one statement."""
    n = len(text)
    while i < n and text[i] in " \t\r\n":
        i += 1
    if i < n and text[i] == "{":
        return _parse_seq(text, i + 1, line_of)
    st, j = _parse_one(text, i, line_of)
    return ([st] if st is not None else []), j


def _parse_one(text, i, line_of):
    n = len(text)
    start = i
    m = re.match(r"[A-Za-z_]\w*", text[i:])
    kw = m.group(0) if m else ""
    if text[i] == "{":
        body, j = _parse_seq(text, i + 1, line_of)
        return Stmt("block", "", line_of(i), start, j, children=body), j
    if kw in ("if", "while", "for", "switch"):
        jp = text.find("(", i)
        if jp < 0:
            e = _simple_end(text, i)
            return Stmt("simple", text[i:e], line_of(i), start, e), e
        k = _match_paren(text, jp)
        cond = text[jp + 1:k - 1]
        body, j = _parse_body(text, k, line_of)
        if kw == "if":
            els = None
            j2 = j
            while j2 < n and text[j2] in " \t\r\n":
                j2 += 1
            if text.startswith("else", j2) and \
                    not re.match(r"\w", text[j2 + 4:j2 + 5] or " "):
                els, j = _parse_body(text, j2 + 4, line_of)
            return Stmt("if", "", line_of(i), start, j,
                        children=body, else_children=els, cond=cond), j
        kind = "loop" if kw in ("while", "for") else "block"
        return Stmt(kind, kw, line_of(i), start, j,
                    children=body, cond=cond), j
    if kw == "do":
        body, j = _parse_body(text, i + 2, line_of)
        cond = ""
        j2 = j
        while j2 < n and text[j2] in " \t\r\n":
            j2 += 1
        if text.startswith("while", j2):
            jp = text.find("(", j2)
            if jp >= 0:
                k = _match_paren(text, jp)
                cond = text[jp + 1:k - 1]
                e = text.find(";", k)
                j = (e + 1) if e >= 0 else k
        return Stmt("loop", "do", line_of(i), start, j,
                    children=body, cond=cond), j
    if kw == "try":
        jb = text.find("{", i)
        if jb < 0:
            e = _simple_end(text, i)
            return Stmt("simple", text[i:e], line_of(i), start, e), e
        body, j = _parse_seq(text, jb + 1, line_of)
        children = list(body)
        while True:
            j2 = j
            while j2 < n and text[j2] in " \t\r\n":
                j2 += 1
            if not text.startswith("catch", j2):
                break
            jp = text.find("(", j2)
            k = _match_paren(text, jp) if jp >= 0 else j2 + 5
            jb2 = text.find("{", k)
            if jb2 < 0:
                break
            cbody, j = _parse_seq(text, jb2 + 1, line_of)
            children.extend(cbody)
        return Stmt("block", "try", line_of(i), start, j,
                    children=children), j
    e = _simple_end(text, i)
    return Stmt("simple", text[i:e], line_of(i), start, e), e


def parse_function(span_text, start_line):
    """Parse one function_spans entry into (stmts, line_of, body_end_line).
    Returns (None, None, None) when no body brace is found (declarations)."""
    depth = 0
    body = -1
    for idx, c in enumerate(span_text):
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif c == "{" and depth == 0:
            body = idx
            break
    if body < 0:
        return None, None, None

    def line_of(pos):
        return start_line + span_text.count("\n", 0, pos)

    stmts, end = _parse_seq(span_text, body + 1, line_of)
    return stmts, line_of, line_of(min(end, len(span_text) - 1))


def walk_simple_stmts(stmts):
    """Yield every 'simple' node, plus synthetic nodes for if/loop
    conditions (a call in a condition is still a call site)."""
    for st in stmts:
        if st.kind == "simple":
            yield st
        else:
            if st.cond:
                yield Stmt("simple", st.cond, st.line, st.start, st.start)
            yield from walk_simple_stmts(st.children)
            if st.else_children:
                yield from walk_simple_stmts(st.else_children)


def loop_intervals(stmts, span_text):
    """(start, end, has_eintr) for every loop node in the tree."""
    out = []
    for st in stmts:
        if st.kind == "loop":
            out.append((st.start, st.end,
                        "EINTR" in span_text[st.start:st.end]))
        out.extend(loop_intervals(st.children, span_text))
        if st.else_children:
            out.extend(loop_intervals(st.else_children, span_text))
    return out


# ---- fd-lifecycle --------------------------------------------------------

FD_CREATE_RE = re.compile(
    r"(?<![\w>])::\s*(socketpair|socket|accept4|accept|open|pipe2|pipe|dup)"
    r"\s*\(")
# Creation flag that makes the fd CLOEXEC atomically, per creation call.
FD_CLOEXEC_FLAG = {
    "socket": "SOCK_CLOEXEC", "socketpair": "SOCK_CLOEXEC",
    "accept4": "SOCK_CLOEXEC", "open": "O_CLOEXEC", "pipe2": "O_CLOEXEC",
}
# Calls with no CLOEXEC-at-creation form: the finding names the atomic
# replacement.
FD_CLOEXEC_ADVICE = {
    "accept": "use ::accept4(..., SOCK_CLOEXEC)",
    "pipe": "use ::pipe2(..., O_CLOEXEC)",
    "dup": "use ::fcntl(fd, F_DUPFD_CLOEXEC, 0)",
}
# Functions assumed not to throw when deciding unwind edges.  Everything
# else (a lowercase free-function call that is not ::-qualified and not a
# member call) conservatively may throw — SSAMR_REQUIRE is everywhere.
NOTHROW_CALLS = {
    "close_fd", "strerror", "htonl", "htons", "ntohl", "ntohs", "memcpy",
    "memset", "move", "min", "max", "clamp", "swap",
}
FREE_CALL_RE = re.compile(r"(?<![\w.:>])([a-z_]\w*)\s*\(")
THROW_MARK_RE = re.compile(
    r"\bthrow\b|\bSSAMR_REQUIRE\b|\bSSAMR_ASSERT\b|\bfail\s*\(")
TERMINAL_THROW_RE = re.compile(r"^\s*(?:fail\s*\(|throw\b)")
RETURN_RE = re.compile(r"^\s*(?:co_)?return\b")


def may_unwind(text):
    if THROW_MARK_RE.search(text):
        return True
    for name in FREE_CALL_RE.findall(text):
        if name not in NOTHROW_CALLS and name not in NOT_A_FUNCTION:
            return True
    return False


def fd_creations(span_text):
    """Creation sites in one function body.  Each entry:
    {fn, offset, var (None = untracked), birth_transfer, args}."""
    out = []
    for m in FD_CREATE_RE.finditer(span_text):
        fn = m.group(1)
        args = balanced_region(span_text, m.end() - 1)
        before = span_text[:m.start()].rstrip()
        birth_transfer = before.endswith(("(", ","))
        var = None
        if not birth_transfer:
            if fn in ("socketpair", "pipe", "pipe2"):
                am = re.search(r"([A-Za-z_]\w*)\s*\)?\s*$", args)
                var = am.group(1) if am else None
            else:
                am = re.search(r"([A-Za-z_]\w*)\s*=\s*$", before + " ")
                var = am.group(1) if am else None
        out.append({"fn": fn, "offset": m.start(), "var": var,
                    "birth_transfer": birth_transfer, "args": args})
    return out


def _fd_closes(text, var):
    return re.search(
        rf"(?:\bclose_fd|::\s*close)\s*\([^()]*\b{re.escape(var)}\b", text)


_FD_TRANSFER_FMTS = (
    r"\breturn\b[^;]*\b{v}\b",                       # returned to the caller
    r"\b[A-Z]\w*\s*[({{][^;]*\b{v}\b",               # handed to a ctor/agg
    r"\.\s*(?:reset|push_back|emplace_back|assign)\s*\([^;]*\b{v}\b",
    r"(?:\w+_|\]|\.\w+|->\w+)\s*=[^=][^;]*\b{v}\b",  # stored into a member
)


def _fd_transfers(text, var):
    v = re.escape(var)
    return any(re.search(f.format(v=v), text) for f in _FD_TRANSFER_FMTS)


def _fd_refine(cond, var, status):
    """Branch refinement for `if (cond)`: C fd idioms make the fd invalid
    on exactly one side of a sign test."""
    if status != "open":
        return status, status
    v = re.escape(var)
    if re.search(rf"\b{v}\b(?:\s*\.\s*\w+\s*\(\s*\))?\s*(?:<\s*0|==\s*-1)",
                 cond):
        return "off", "open"
    if re.search(rf"\b{v}\b(?:\s*\.\s*\w+\s*\(\s*\))?\s*(?:>=\s*0|!=\s*-1)",
                 cond):
        return "open", "off"
    return "open", "open"


# Creation inside an if-condition: polarity of the comparison decides which
# branch holds a valid fd.  `< 0`/`== -1`/`!= 0` test failure; `>= 0`/
# `== 0`/`!= -1` test success.
_COND_FAIL_RE = re.compile(r"\)\s*(?:<\s*0|==\s*-1|!=\s*0)\s*$")
_COND_OK_RE = re.compile(r"\)\s*(?:>=\s*0|==\s*0|!=\s*-1)\s*$")


class FdTracker:
    """Must-close walk for one creation site over one function tree."""

    def __init__(self, ctx, cr, span_text):
        self.ctx = ctx
        self.cr = cr
        self.var = cr["var"]
        self.var_re = re.compile(rf"\b{re.escape(self.var)}\b")
        self.create_re = re.compile(
            rf"(?<![\w>])::\s*{cr['fn']}\s*\(")
        self.leaks = {}  # line -> message

    def _is_creation(self, text):
        if not self.create_re.search(text):
            return False
        crs = fd_creations(text)
        return any(c["var"] == self.var for c in crs)

    def _leak(self, line, how):
        self.leaks.setdefault(
            line,
            f"fd '{self.var}' from ::{self.cr['fn']} leaks {how} — close "
            "it, transfer ownership, or hold it in net::UniqueFd")

    def walk_seq(self, stmts, statuses):
        for st in stmts:
            if not statuses:
                break
            statuses = self.walk_stmt(st, statuses)
        return statuses

    def walk_stmt(self, st, statuses):
        if st.kind == "simple":
            return self.walk_simple(st, statuses)
        if st.kind == "loop":
            inner = self.walk_seq(st.children, set(statuses))
            return statuses | inner
        if st.kind == "block":
            if st.cond:  # switch condition may contain calls — treat flat
                statuses = self.walk_simple(
                    Stmt("simple", st.cond, st.line, st.start, st.start),
                    statuses)
            return self.walk_seq(st.children, statuses)
        # if
        cond = st.cond
        created = self._is_creation(cond)
        then_in, else_in = set(), set()
        for s in statuses:
            if created:
                s = "open"
                if _COND_FAIL_RE.search(cond.strip()):
                    then_in.add("off")
                    else_in.add(s)
                    continue
                if _COND_OK_RE.search(cond.strip()):
                    then_in.add(s)
                    else_in.add("off")
                    continue
            t_s, e_s = _fd_refine(cond, self.var, s)
            then_in.add(t_s)
            else_in.add(e_s)
        then_out = self.walk_seq(st.children, then_in)
        if st.else_children is not None:
            else_out = self.walk_seq(st.else_children, else_in)
        else:
            else_out = else_in
        return then_out | else_out

    def walk_simple(self, st, statuses):
        text = st.text
        out = set()
        for s in statuses:
            cur = s
            if self._is_creation(text):
                cur = "open"
            if cur == "open" and (_fd_closes(text, self.var)
                                  or _fd_transfers(text, self.var)):
                cur = "off"
            if RETURN_RE.match(text):
                if cur == "open":
                    self._leak(st.line, "at this return")
                continue
            if TERMINAL_THROW_RE.match(text.lstrip()):
                if cur == "open":
                    self._leak(st.line, "on this throw path")
                continue
            if cur == "open" and may_unwind(text):
                self._leak(st.line, "if this statement throws")
            out.add(cur)
        return out


def check_fd_lifecycle(ctx: FileContext, findings):
    if not ctx.in_src() or not FD_CREATE_RE.search(ctx.stripped):
        return
    for start_line, _end_line, span_text in function_spans(ctx):
        stmts, line_of, body_end = parse_function(span_text, start_line)
        if stmts is None:
            continue
        for cr in fd_creations(span_text):
            line = line_of(cr["offset"])
            fn = cr["fn"]
            flag = FD_CLOEXEC_FLAG.get(fn)
            if flag is not None and flag not in cr["args"]:
                findings.append(Finding(
                    ctx.rel, line, "fd-lifecycle",
                    f"::{fn} without {flag} — descriptors must be CLOEXEC "
                    "at creation (a fork between creation and fcntl leaks "
                    "the fd into the child's exec image)"))
            elif fn in FD_CLOEXEC_ADVICE:
                findings.append(Finding(
                    ctx.rel, line, "fd-lifecycle",
                    f"::{fn} cannot create the fd CLOEXEC atomically — "
                    f"{FD_CLOEXEC_ADVICE[fn]}"))
            if cr["var"] is None or cr["birth_transfer"]:
                continue
            tracker = FdTracker(ctx, cr, span_text)
            leftover = tracker.walk_seq(stmts, {"untracked"})
            if "open" in leftover:
                tracker._leak(body_end, "at the end of the function")
            for lline, msg in sorted(tracker.leaks.items()):
                findings.append(Finding(ctx.rel, lline, "fd-lifecycle", msg))


# ---- eintr-retry ---------------------------------------------------------

RAW_SYSCALL_RE = re.compile(
    r"(?<![\w>])::\s*(read|write|poll|waitpid|connect)\b\s*\(")


def check_eintr_retry(ctx: FileContext, cfg, findings):
    if cfg is None or not ctx.in_src():
        return
    if not RAW_SYSCALL_RE.search(ctx.stripped):
        return
    wrappers = set(cfg.get("eintr", {}).get("wrappers", ()))
    if ctx.rel not in wrappers:
        for m in RAW_SYSCALL_RE.finditer(ctx.stripped):
            line = ctx.stripped.count("\n", 0, m.start()) + 1
            findings.append(Finding(
                ctx.rel, line, "eintr-retry",
                f"raw ::{m.group(1)} outside the sanctioned syscall seam "
                "(layering.toml [eintr].wrappers) — call the net:: "
                "wrapper so the EINTR protocol exists exactly once"))
        return
    # Inside a wrapper: every raw call site must be dominated by a retry
    # loop that handles EINTR.
    for start_line, _e, span_text in function_spans(ctx):
        stmts, line_of, _ = parse_function(span_text, start_line)
        if stmts is None:
            continue
        loops = loop_intervals(stmts, span_text)
        for m in RAW_SYSCALL_RE.finditer(span_text):
            ok = any(s <= m.start() < e and has_eintr
                     for s, e, has_eintr in loops)
            if not ok:
                findings.append(Finding(
                    ctx.rel, line_of(m.start()), "eintr-retry",
                    f"raw ::{m.group(1)} in a wrapper file is not "
                    "dominated by an EINTR retry loop"))


# ---- lock-escape ---------------------------------------------------------

GUARDED_DECL_RE = re.compile(r"\b(\w+)\s+SSAMR_GUARDED_BY\s*\(")
MUTEXLOCK_RE = re.compile(r"\bMutexLock\b")


def _lock_scopes(stmts, parent_end):
    """(scope_start, scope_end) per MutexLock declaration: from the end of
    the declaring statement to the end of its enclosing block."""
    scopes = []
    for st in stmts:
        if st.kind == "simple" and MUTEXLOCK_RE.search(st.text):
            scopes.append((st.end, parent_end))
        scopes.extend(_lock_scopes(st.children, st.end))
        if st.else_children:
            scopes.extend(_lock_scopes(st.else_children, st.end))
    return scopes


def check_lock_escape(ctx: FileContext, findings):
    if not ctx.in_src() or ctx.is_seam(THREAD_SAFETY_SEAM):
        return
    guarded = set(GUARDED_DECL_RE.findall(ctx.stripped))
    if not guarded or not MUTEXLOCK_RE.search(ctx.stripped):
        return
    for start_line, _e, span_text in function_spans(ctx):
        stmts, line_of, _ = parse_function(span_text, start_line)
        if stmts is None:
            continue
        for s, e in _lock_scopes(stmts, len(span_text)):
            scope = span_text[s:e]
            after = span_text[e:]
            for g in sorted(guarded):
                gq = re.escape(g)
                for m in re.finditer(rf"\breturn\b[^;]*&\s*{gq}\b", scope):
                    findings.append(Finding(
                        ctx.rel, line_of(s + m.start()), "lock-escape",
                        f"address of GUARDED_BY field '{g}' escapes via "
                        "return — the pointer outlives the MutexLock"))
                cands = set()
                for m in re.finditer(
                        rf"[&*]\s*(\w+)\s*=\s*[^;]*\b{gq}\b", scope):
                    cands.add(m.group(1))
                for m in re.finditer(rf"\b(\w+)\s*=\s*&\s*{gq}\b", scope):
                    cands.add(m.group(1))
                cands.discard(g)
                for cand in sorted(cands):
                    cq = re.escape(cand)
                    um = re.search(rf"\b{cq}\b", after)
                    if um:
                        findings.append(Finding(
                            ctx.rel, line_of(e + um.start()), "lock-escape",
                            f"'{cand}' aliases GUARDED_BY field '{g}' and "
                            "is used after its MutexLock scope ends"))
                    rm = re.search(rf"\breturn\s+{cq}\s*;", scope)
                    if rm:
                        findings.append(Finding(
                            ctx.rel, line_of(s + rm.start()), "lock-escape",
                            f"'{cand}' aliases GUARDED_BY field '{g}' and "
                            "escapes via return"))


# ---- determinism-taint ---------------------------------------------------


def _split_assign(text):
    """(lhs_var, rhs) of the first depth-0 assignment, or (None, None).
    Compound assignments (+= etc.) count; comparisons do not."""
    depth = 0
    for j, c in enumerate(text):
        if c in "([{<":
            depth += 1 if c != "<" else 0
        elif c in ")]}>":
            depth -= 1 if c != ">" else 0
        elif c == "=" and depth == 0:
            if j + 1 < len(text) and text[j + 1] == "=":
                return None, None
            if j > 0 and text[j - 1] in "=!<>":
                return None, None
            lhs = text[:j].rstrip()
            if lhs.endswith(("+", "-", "*", "/", "%", "&", "|", "^")):
                lhs = lhs[:-1].rstrip()
            rhs = text[j + 1:]
            lhs = re.sub(r"\[[^\]]*\]\s*$", "", lhs)
            vm = re.search(r"([A-Za-z_]\w*)\s*$", lhs)
            return (vm.group(1) if vm else None), rhs
    return None, None


def check_determinism_taint(ctx: FileContext, cfg, findings):
    taint_cfg = (cfg or {}).get("taint", {})
    sources = list(taint_cfg.get("sources", ()))
    sinks = list(taint_cfg.get("sinks", ()))
    sanitizers = list(taint_cfg.get("sanitizers", ()))
    if not sources or not sinks or not ctx.in_src():
        return
    if ctx.is_seam(WALLCLOCK_SEAM):
        return
    tok_sources = [s for s in sources if not s.startswith("/")]
    raw_sources = [s for s in sources if s.startswith("/")]
    src_re = re.compile(
        r"\b(?:" + "|".join(re.escape(s) for s in tok_sources) + r")\b") \
        if tok_sources else None
    if (src_re is None or not src_re.search(ctx.stripped)) and \
            not any(s in ctx.raw for s in raw_sources):
        return
    sink_re = re.compile(
        r"(?:\.|->)\s*(?:" + "|".join(re.escape(s) for s in sinks) +
        r")\s*\(")
    san_re = re.compile(
        r"\b(?:" + "|".join(re.escape(s) for s in sanitizers) + r")\s*\(") \
        if sanitizers else None

    def sanitized(expr):
        return san_re is not None and san_re.search(expr)

    # Lines whose RAW text reads /proc (strings are blanked in `stripped`,
    # so path sources are matched against the raw line).
    raw_source_lines = {
        idx for idx, line in enumerate(ctx.raw_lines, start=1)
        if any(s in line for s in raw_sources)}

    def has_source(stmt):
        return (src_re is not None and src_re.search(stmt.text)) or \
            stmt.line in raw_source_lines

    for start_line, _e, span_text in function_spans(ctx):
        stmts, line_of, _ = parse_function(span_text, start_line)
        if stmts is None:
            continue
        simple = list(walk_simple_stmts(stmts))
        tainted = set()
        for _pass in range(10):
            grew = False
            for st in simple:
                is_src = has_source(st)
                lhs, rhs = _split_assign(st.text)
                if lhs is not None and not sanitized(rhs):
                    rhs_tainted = (src_re is not None
                                   and src_re.search(rhs)) or \
                        (st.line in raw_source_lines) or \
                        any(re.search(rf"\b{re.escape(t)}\b", rhs)
                            for t in tainted)
                    if rhs_tainted and lhs not in tainted:
                        tainted.add(lhs)
                        grew = True
                # A source call handed `&x` writes a measurement into x
                # (the run_phase out-param idiom).
                if is_src and not sanitized(st.text):
                    for m in re.finditer(r"&\s*([A-Za-z_]\w*)", st.text):
                        if m.group(1) not in tainted:
                            tainted.add(m.group(1))
                            grew = True
            if not grew:
                break
        for st in simple:
            for m in sink_re.finditer(st.text):
                op = st.text.find("(", m.end() - 1)
                args = balanced_region(st.text, op) if op >= 0 else ""
                if sanitized(args):
                    continue
                dirty = (src_re is not None and src_re.search(args)) or \
                    any(re.search(rf"\b{re.escape(t)}\b", args)
                        for t in tainted)
                if dirty:
                    findings.append(Finding(
                        ctx.rel, st.line, "determinism-taint",
                        "measured wall time reaches a deterministic "
                        "trace/CSV sink without passing a [taint]."
                        "sanitizers seam (ProcOptions::to_virtual)"))


def check_flow_rules(ctx: FileContext, cfg, findings):
    timed("fd-lifecycle", check_fd_lifecycle, ctx, findings)
    timed("eintr-retry", check_eintr_retry, ctx, cfg, findings)
    timed("lock-escape", check_lock_escape, ctx, findings)
    timed("determinism-taint", check_determinism_taint, ctx, cfg, findings)


# --------------------------------------------------------------------------
# Textual backend for the type-dependent rules


def check_float_cast_textual(ctx: FileContext, findings):
    if not ctx.in_src():
        return
    spans = function_spans(ctx)
    for m in re.finditer(r"static_cast\s*<([^<>]+)>\s*\(", ctx.stripped):
        dest = m.group(1).strip()
        if not INT_DEST_RE.fullmatch(dest):
            continue
        operand = operand_of_cast(ctx.stripped, m.end() - 1)
        line = ctx.stripped.count("\n", 0, m.start()) + 1
        if not operand_is_floating_textual(ctx, operand, line, spans):
            continue
        if has_adjacent_guard(ctx, line, operand):
            continue
        findings.append(Finding(
            ctx.rel, line, "float-cast",
            f"float->int static_cast<{dest}> without an adjacent "
            "clamp/guard (UB when out of range)"))


def check_unordered_iter_textual(ctx: FileContext, findings):
    if not ctx.in_src() or "unordered_" not in ctx.stripped:
        return
    unordered_names = set(UNORDERED_DECL_RE.findall(ctx.stripped))
    spans = function_spans(ctx)
    for m in RANGE_FOR_RE.finditer(ctx.stripped):
        header = m.group(1)
        if ":" not in header:
            continue
        range_expr = header.rsplit(":", 1)[1]
        names = set(re.findall(r"\b[A-Za-z_]\w*\b", range_expr))
        if "unordered_" not in range_expr and not (names & unordered_names):
            continue
        line = ctx.stripped.count("\n", 0, m.start()) + 1
        for start, end, text in spans:
            if start <= line <= end and OUTPUT_MARK_RE.search(text):
                findings.append(Finding(
                    ctx.rel, line, "unordered-iter",
                    "iteration over an unordered container in a function "
                    "feeding RunTrace/PartitionResult/CSV — hash order is "
                    "not deterministic"))
                break


def lint_file_textual(ctx: FileContext, cfg, findings):
    check_token_rules(ctx, cfg, findings)
    timed("float-cast", check_float_cast_textual, ctx, findings)
    timed("unordered-iter", check_unordered_iter_textual, ctx, findings)
    check_units_rules(ctx, cfg, findings)
    check_flow_rules(ctx, cfg, findings)


# --------------------------------------------------------------------------
# libclang backend: token rules reuse the text layer (identical verdicts);
# the type-dependent rules use the real AST.


def load_cindex():
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    override = os.environ.get("SSAMR_LINT_LIBCLANG")
    if override:
        cindex.Config.set_library_file(override)
    try:
        cindex.Index.create()
    except Exception:
        for candidate in sorted(Path("/usr/lib").rglob("libclang-*.so*"),
                                reverse=True):
            try:
                cindex.Config.set_library_file(str(candidate))
                cindex.Index.create()
                break
            except Exception:
                cindex.Config.loaded = False
        else:
            return None
    return cindex


FLOATING_KINDS = None
INTEGRAL_KINDS = None


def init_type_kinds(cindex):
    global FLOATING_KINDS, INTEGRAL_KINDS
    tk = cindex.TypeKind
    FLOATING_KINDS = {tk.FLOAT, tk.DOUBLE, tk.LONGDOUBLE}
    INTEGRAL_KINDS = {
        tk.CHAR_U, tk.UCHAR, tk.USHORT, tk.UINT, tk.ULONG, tk.ULONGLONG,
        tk.CHAR_S, tk.SCHAR, tk.SHORT, tk.INT, tk.LONG, tk.LONGLONG,
    }


def expr_children(cindex, cursor):
    return [c for c in cursor.get_children()
            if c.kind.is_expression() or c.kind.is_statement()]


def enclosing_function_feeds_output(ctx, fn_cursor):
    if fn_cursor is None:
        return False
    extent = fn_cursor.extent
    text = "\n".join(
        ctx.lines[extent.start.line - 1:extent.end.line])
    return bool(OUTPUT_MARK_RE.search(text))


def check_ast_rules(cindex, ctx_by_path, cursor, fn_cursor, findings):
    ck = cindex.CursorKind
    if cursor.kind in (ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR,
                       ck.DESTRUCTOR, ck.FUNCTION_TEMPLATE, ck.LAMBDA_EXPR):
        if cursor.is_definition() or cursor.kind == ck.LAMBDA_EXPR:
            fn_cursor = cursor
    loc_file = cursor.location.file
    ctx = ctx_by_path.get(str(Path(loc_file.name).resolve())) if loc_file \
        else None
    if ctx is not None:
        if cursor.kind == ck.CXX_STATIC_CAST_EXPR:
            dest = cursor.type.get_canonical()
            operands = expr_children(cindex, cursor)
            src_type = None
            if operands:
                src_type = operands[-1].type.get_canonical()
            if (src_type is not None and src_type.kind in FLOATING_KINDS
                    and dest.kind in INTEGRAL_KINDS):
                line = cursor.extent.start.line
                end = min(cursor.extent.end.line, len(ctx.lines))
                operand_text = "\n".join(ctx.lines[line - 1:end])
                if not has_adjacent_guard(ctx, line, operand_text):
                    findings.append(Finding(
                        ctx.rel, line, "float-cast",
                        f"float->int static_cast<{cursor.type.spelling}> "
                        "without an adjacent clamp/guard (UB when out of "
                        "range)"))
        elif cursor.kind == ck.CXX_FOR_RANGE_STMT:
            range_types = [c.type.spelling for c in cursor.get_children()]
            if any("unordered_map" in t or "unordered_set" in t
                   or "unordered_multi" in t for t in range_types):
                if enclosing_function_feeds_output(ctx, fn_cursor):
                    findings.append(Finding(
                        ctx.rel, cursor.extent.start.line, "unordered-iter",
                        "iteration over an unordered container in a "
                        "function feeding RunTrace/PartitionResult/CSV — "
                        "hash order is not deterministic"))
    for child in cursor.get_children():
        check_ast_rules(cindex, ctx_by_path, child, fn_cursor, findings)


def lint_libclang(cindex, tus, ctx_by_path, cfg, findings):
    """tus: list of (main_file_path, compile_args)."""
    init_type_kinds(cindex)
    index = cindex.Index.create()
    for ctx in ctx_by_path.values():
        check_token_rules(ctx, cfg, findings)
        check_units_rules(ctx, cfg, findings)
        check_flow_rules(ctx, cfg, findings)
    seen_tu_errors = []
    for path, args in tus:
        try:
            tu = index.parse(str(path), args=args)
        except cindex.TranslationUnitLoadError as e:
            seen_tu_errors.append(f"{path}: {e}")
            continue
        check_ast_rules(cindex, ctx_by_path, tu.cursor, None, findings)
    for err in seen_tu_errors:
        print(f"warning: libclang failed to parse {err}", file=sys.stderr)


# --------------------------------------------------------------------------
# Drivers


def compile_db_args(build_dir: Path):
    """Map resolved src file -> compile args (without -c/-o/the file)."""
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        return {}
    out = {}
    for entry in json.loads(db_path.read_text()):
        f = Path(entry["directory"], entry["file"]).resolve()
        args = entry.get("arguments")
        if args is None:
            args = entry.get("command", "").split()
        keep, skip_next = [], True  # first token is the compiler
        for a in args:
            if skip_next:
                skip_next = False
                continue
            if a in ("-c", "-o"):
                skip_next = a == "-o"
                continue
            if Path(a).resolve() == f if not a.startswith("-") else False:
                continue
            keep.append(a)
        out[f] = keep
    return out


def default_args():
    return ["-xc++", f"-std=c++20", "-I", str(SRC)]


def collect_findings(files, backend, build_dir, pretend=None, cfg=None):
    """files: list of Paths.  pretend: map Path -> pretend repo-relative
    path (fixture mode).  cfg: parsed tools/layering.toml (or None).
    Returns (findings, backend_used)."""
    ctx_by_path = {}
    for f in files:
        rp = pretend.get(f) if pretend else None
        ctx_by_path[str(f.resolve())] = FileContext(f, pretend_rel=rp)

    findings = []
    cindex = load_cindex() if backend in ("auto", "libclang") else None
    if backend == "libclang" and cindex is None:
        print("error: --backend=libclang requested but python clang "
              "bindings / libclang are unavailable", file=sys.stderr)
        sys.exit(2)

    if cindex is not None:
        db = compile_db_args(build_dir) if build_dir else {}
        tus = []
        for f in files:
            rf = f.resolve()
            if rf.suffix in (".cpp", ".cc", ".cxx"):
                tus.append((rf, db.get(rf, default_args())))
        headers_only = [f for f in files
                        if f.resolve().suffix in (".hpp", ".h")]
        # Headers not reached through any listed TU still get token rules
        # (already applied); AST rules need a TU, so parse headers directly.
        for h in headers_only:
            tus.append((h.resolve(), default_args()))
        lint_libclang(cindex, tus, ctx_by_path, cfg, findings)
        used = "libclang"
    else:
        for ctx in ctx_by_path.values():
            lint_file_textual(ctx, cfg, findings)
        used = "textual"

    kept, seen = [], set()
    for fd in findings:
        ctx = next((c for c in ctx_by_path.values() if c.rel == fd.path),
                   None)
        if ctx is not None and ctx.suppressed(fd.line, fd.rule):
            continue
        if fd.key() in seen:
            continue
        seen.add(fd.key())
        kept.append(fd)
    kept.sort(key=Finding.key)
    return kept, used


def default_file_set(build_dir):
    files = sorted(SRC.rglob("*.cpp")) + sorted(SRC.rglob("*.hpp"))
    return [f for f in files if f.is_file()]


def count_suppressions(files, pretend=None):
    """Per-rule `ssamr-lint: allow(...)` marker counts and sites over the
    src/-relative subset of `files`."""
    counts, sites = {}, {}
    for f in files:
        rel = pretend.get(f) if pretend else None
        rel = rel if rel is not None else rel_to_repo(f)
        if not rel.startswith("src/"):
            continue
        try:
            lines = f.read_text(encoding="utf-8",
                                errors="replace").splitlines()
        except OSError:
            continue
        for idx, line in enumerate(lines, start=1):
            m = SUPPRESS_RE.search(line)
            if not m:
                continue
            for rule in (r.strip() for r in m.group(1).split(",")):
                counts[rule] = counts.get(rule, 0) + 1
                sites.setdefault(rule, []).append(f"{rel}:{idx}")
    return counts, sites


def enforce_budget(files, budget_path, report_path):
    """Returns a list of violation strings (empty = within budget)."""
    counts, sites = count_suppressions(files)
    if report_path:
        Path(report_path).write_text(json.dumps(
            {"counts": dict(sorted(counts.items())),
             "sites": {k: sorted(v) for k, v in sorted(sites.items())}},
            indent=2) + "\n")
    problems = []
    if budget_path:
        budget = json.loads(Path(budget_path).read_text())
        budget = {k: v for k, v in budget.items() if not k.startswith("_")}
        for rule in sorted(set(counts) | set(budget)):
            have = counts.get(rule, 0)
            allowed = budget.get(rule, 0)
            if have > allowed:
                where = ", ".join(sites.get(rule, []))
                problems.append(
                    f"suppression budget exceeded for [{rule}]: {have} "
                    f"allow() markers vs budget {allowed} ({where}) — "
                    "fix the finding or raise the budget in "
                    f"{budget_path} with review")
    return problems


def run_lint(args):
    files = [Path(f) for f in args.files] if args.files \
        else default_file_set(args.build)
    cfg = load_config(args.config)
    pretend = None
    if args.pretend:
        if len(files) != 1:
            print("error: --pretend requires exactly one input file",
                  file=sys.stderr)
            return 2
        pretend = {files[0]: args.pretend}
    findings, used = collect_findings(files, args.backend, args.build,
                                      pretend=pretend, cfg=cfg)
    if args.select:
        selected = {r.strip() for r in args.select.split(",")}
        unknown = selected - set(RULES)
        if unknown:
            print(f"error: --select of unknown rule(s): "
                  f"{', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        findings = [fd for fd in findings if fd.rule in selected]
    for fd in findings:
        print(fd)
    budget_problems = []
    if args.budget or args.suppressions_out:
        budget_problems = enforce_budget(files, args.budget,
                                         args.suppressions_out)
        for p in budget_problems:
            print(p)
    n = len(findings)
    print(f"ssamr_lint ({used} backend): {len(files)} files, "
          f"{n} finding{'s' if n != 1 else ''}", file=sys.stderr)
    if args.timing_out:
        write_timings(args.timing_out, used, len(files))
    return 1 if findings or budget_problems else 0


# --------------------------------------------------------------------------
# Architecture conformance: the include-graph layering gate


def scan_include_graph():
    """Scan src/ quoted includes.  Returns (dirs, edges, hygiene) where
    edges maps (from_dir, to_dir) -> [provenance strings] for cross-dir
    edges, and hygiene lists malformed includes."""
    dirs, edges, hygiene = set(), {}, []
    for f in sorted(SRC.rglob("*.cpp")) + sorted(SRC.rglob("*.hpp")):
        rel = f.relative_to(SRC)
        if len(rel.parts) < 2:
            continue  # no top-level src files today; nothing to attribute
        d = rel.parts[0]
        dirs.add(d)
        text = f.read_text(encoding="utf-8", errors="replace")
        for m in INCLUDE_RE.finditer(text):
            inc = m.group(1)
            site = f"src/{rel}:{text.count(chr(10), 0, m.start()) + 1}"
            if inc.startswith(("..", "/", "./")) or "\\" in inc:
                hygiene.append(f"{site}: non-canonical include \"{inc}\" — "
                               "quoted includes are src-relative")
                continue
            if "/" not in inc:
                hygiene.append(f"{site}: include \"{inc}\" must carry its "
                               f"directory (\"{d}/{inc}\")")
                continue
            if inc.endswith(".cpp"):
                hygiene.append(f"{site}: include of a translation unit "
                               f"\"{inc}\"")
                continue
            if not (SRC / inc).is_file():
                hygiene.append(f"{site}: include of nonexistent "
                               f"\"{inc}\"")
                continue
            tgt = inc.split("/")[0]
            if tgt != d:
                edges.setdefault((d, tgt), []).append(site)
    return dirs, edges, hygiene


def find_cycle(adj):
    """One cycle in adj (dir -> set of dirs), as a node list, or None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {n: WHITE for n in adj}
    stack = []

    def dfs(n):
        color[n] = GREY
        stack.append(n)
        for s in sorted(adj.get(n, ())):
            if color.get(s, WHITE) == GREY:
                return stack[stack.index(s):] + [s]
            if color.get(s, WHITE) == WHITE:
                cyc = dfs(s)
                if cyc:
                    return cyc
        stack.pop()
        color[n] = BLACK
        return None

    for n in sorted(adj):
        if color[n] == WHITE:
            cyc = dfs(n)
            if cyc:
                return cyc
    return None


def emit_dot(path, order, edges):
    lines = ["// Directory-level include graph of src/ — generated by",
             "// tools/ssamr_lint.py --emit-graph; layers from "
             "tools/layering.toml.",
             "digraph ssamr_includes {",
             "  rankdir=BT;",
             "  node [shape=box, fontname=\"Helvetica\"];"]
    for group in order:
        names = "; ".join(f'"{d}"' for d in group)
        lines.append(f"  {{ rank=same; {names}; }}")
    for (a, b), sites in sorted(edges.items()):
        lines.append(f'  "{a}" -> "{b}" [tooltip="{len(sites)} include(s)"];')
    lines.append("}")
    out = Path(path)
    out.write_text("\n".join(lines) + "\n")
    dot = shutil.which("dot")
    if dot:
        svg = out.with_suffix(".svg")
        subprocess.run([dot, "-Tsvg", str(out), "-o", str(svg)], check=False)
        print(f"include graph: {out} (rendered {svg})")
    else:
        print(f"include graph: {out} (graphviz `dot` not installed — "
              "textual DOT only)")


def run_layering(args):
    cfg = load_config(args.config)
    if cfg is None:
        print("error: --layering needs a readable config", file=sys.stderr)
        return 2
    order = cfg.get("layers", {}).get("order", [])
    layer_of = {d: i for i, group in enumerate(order) for d in group}
    declared = {(a, b)
                for a, targets in cfg.get("edges", {}).items()
                for b in targets}
    for spec in args.drop_edge or ():
        a, sep, b = spec.partition(":")
        if not sep or (a, b) not in declared:
            print(f"error: --drop-edge {spec}: no declared edge "
                  f"'{a} -> {b}' in {args.config}", file=sys.stderr)
            return 2
        declared.discard((a, b))

    problems = []
    for a, b in sorted(declared):
        if a not in layer_of:
            problems.append(f"[edges] source '{a}' is not in [layers].order")
        elif b not in layer_of:
            problems.append(f"[edges] target '{b}' is not in [layers].order")
        elif layer_of[b] >= layer_of[a]:
            problems.append(
                f"declared back-edge {a} -> {b}: '{b}' is not in a "
                f"strictly lower layer than '{a}'")

    dirs, edges, hygiene = timed("layering", scan_include_graph)
    problems.extend(hygiene)
    for d in sorted(dirs):
        if d not in layer_of:
            problems.append(f"src/{d}/ is not assigned to a layer in "
                            f"{args.config}")
    for (a, b), sites in sorted(edges.items()):
        if (a, b) not in declared:
            problems.append(
                f"undeclared include edge {a} -> {b} (first site "
                f"{sites[0]}) — declare it in [edges] of {args.config} "
                "or remove the include")
        elif layer_of.get(b, -1) >= layer_of.get(a, len(order)):
            problems.append(f"back-edge include {a} -> {b} at {sites[0]}")

    adj = {}
    for (a, b) in edges:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set())
    cyc = find_cycle(adj)
    if cyc:
        problems.append("include cycle: " + " -> ".join(cyc))

    unused = sorted(declared - set(edges))
    for a, b in unused:
        print(f"note: declared edge {a} -> {b} currently unused")

    if args.emit_graph:
        emit_dot(args.emit_graph, order, edges)
    for p in problems:
        print(f"layering: {p}")
    n = len(problems)
    print(f"ssamr_lint layering: {len(dirs)} directories, "
          f"{len(edges)} include edges, {n} problem{'s' if n != 1 else ''}",
          file=sys.stderr)
    if args.timing_out:
        write_timings(args.timing_out, "layering", len(dirs))
    return 1 if problems else 0


def run_check_fixtures(args):
    fixture_dir = Path(args.check_fixtures)
    fixtures = sorted(fixture_dir.glob("*.cpp")) + \
        sorted(fixture_dir.glob("*.hpp"))
    if not fixtures:
        print(f"error: no fixtures in {fixture_dir}", file=sys.stderr)
        return 2

    expected = set()
    pretend = {}
    for f in fixtures:
        pretend[f] = f"src/lint_fixtures/{f.name}"
        for idx, line in enumerate(f.read_text().splitlines(), start=1):
            m = EXPECT_RE.search(line)
            if m:
                for rule in (r.strip() for r in m.group(1).split(",")):
                    if rule not in RULES:
                        print(f"error: {f.name}:{idx} expects unknown rule "
                              f"'{rule}'", file=sys.stderr)
                        return 2
                    expected.add((pretend[f], idx, rule))

    findings, used = collect_findings(fixtures, args.backend, args.build,
                                      pretend=pretend,
                                      cfg=load_config(args.config))
    actual = {fd.key() for fd in findings}
    missing = expected - actual
    unexpected = actual - expected
    for path, line, rule in sorted(missing):
        print(f"FIXTURE MISMATCH: expected [{rule}] at {path}:{line} "
              "— did not fire")
    for path, line, rule in sorted(unexpected):
        print(f"FIXTURE MISMATCH: unexpected [{rule}] at {path}:{line}")
    fired_rules = {rule for _, _, rule in expected}
    silent = set(RULES) - fired_rules
    if silent:
        print(f"FIXTURE GAP: no fixture exercises rule(s): "
              f"{', '.join(sorted(silent))}")
    ok = not missing and not unexpected and not silent
    status = "ok" if ok else "FAILED"
    print(f"ssamr_lint fixtures ({used} backend): {len(fixtures)} files, "
          f"{len(expected)} expected findings — {status}")
    if args.timing_out:
        write_timings(args.timing_out, used, len(fixtures))
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", help="files to lint "
                    "(default: all of src/ via the compile database)")
    ap.add_argument("-p", "--build", type=Path, default=REPO / "build",
                    help="build dir holding compile_commands.json")
    ap.add_argument("--backend", choices=("auto", "libclang", "textual"),
                    default="auto")
    ap.add_argument("--check-fixtures", metavar="DIR",
                    help="self-test against a fixture directory")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--config", type=Path, default=DEFAULT_CONFIG,
                    help="layering/units configuration "
                    "(default: tools/layering.toml)")
    ap.add_argument("--layering", action="store_true",
                    help="check the src/ include graph against --config")
    ap.add_argument("--emit-graph", metavar="DOT",
                    help="with --layering: write the include graph as "
                    "Graphviz DOT (SVG too when `dot` exists)")
    ap.add_argument("--drop-edge", metavar="FROM:TO", action="append",
                    help="with --layering: pretend a declared edge is "
                    "absent (negative test of the gate)")
    ap.add_argument("--timing-out", metavar="JSON",
                    help="write per-rule wall-time JSON artifact")
    ap.add_argument("--select", metavar="RULES",
                    help="comma-separated rule subset to report "
                    "(negative-test hook; default: all rules)")
    ap.add_argument("--pretend", metavar="REL",
                    help="lint the single input file as this repo-relative "
                    "path (fixture negative tests)")
    ap.add_argument("--suppressions-out", metavar="JSON",
                    help="write per-rule allow() counts + sites artifact")
    ap.add_argument("--budget", metavar="JSON",
                    help="fail when per-rule allow() counts under src/ "
                    "exceed this checked-in budget file")
    args = ap.parse_args()

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:16s} {desc}")
        return 0
    if args.layering:
        return run_layering(args)
    if args.check_fixtures:
        return run_check_fixtures(args)
    return run_lint(args)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Self-test for the python result-checking tools.

The golden and benchmark gates are the last line of defence for numerical
regressions, so the checkers themselves need a negative proof: a checker
whose tolerance math or malformed-input handling silently rots would wave
every regression through.  This suite pins:

  golden_check.diff_tables — exact mode, relative-tolerance edges (just
      inside and just outside rtol), missing columns, missing rows, and
      non-numeric field comparison;
  bench_check.normalize    — geometric-mean normalization;
  bench_check.load_baseline — graceful rejection of malformed or
      wrong-shape baselines (message, not traceback);
  bench_check.gate         — threshold edges and the new-benchmark
      (no-baseline-entry) path.

Run directly or via ctest (PyTooling.SelfTest).  Stdlib only.
"""

import importlib.util
import io
import os
import sys
import tempfile
import unittest

TOOLS = os.path.dirname(os.path.abspath(__file__))


def _load(name):
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(TOOLS, name + ".py"))
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


golden_check = _load("golden_check")
bench_check = _load("bench_check")


class DiffTablesTest(unittest.TestCase):
    def test_identical_tables_exact_mode(self):
        table = [["step", "ms"], ["0", "1.25"], ["1", "2.50"]]
        self.assertEqual(golden_check.diff_tables(table, table, 0.0), [])

    def test_exact_mode_flags_last_digit(self):
        got = [["1.2500001"]]
        want = [["1.25"]]
        errors = golden_check.diff_tables(got, want, 0.0)
        self.assertEqual(len(errors), 1)
        self.assertIn("row 0 col 0", errors[0])

    def test_rtol_edge_inside(self):
        # |100 - 109| / 109 = 0.0826 < 0.1: inside tolerance.
        errors = golden_check.diff_tables([["100.0"]], [["109.0"]], 0.1)
        self.assertEqual(errors, [])

    def test_rtol_edge_outside(self):
        # |100 - 112| = 12 > 0.1 * 112 = 11.2: outside tolerance.
        errors = golden_check.diff_tables([["100.0"]], [["112.0"]], 0.1)
        self.assertEqual(len(errors), 1)
        self.assertIn("rtol=0.1", errors[0])

    def test_missing_column_reported_once_per_row(self):
        got = [["a", "1"], ["b", "2"]]
        want = [["a", "1", "extra"], ["b", "2", "extra"]]
        errors = golden_check.diff_tables(got, want, 0.0)
        self.assertEqual(len(errors), 2)
        self.assertIn("got 2 cols, golden 3", errors[0])

    def test_missing_row_reported(self):
        got = [["a"]]
        want = [["a"], ["b"]]
        errors = golden_check.diff_tables(got, want, 0.0)
        self.assertTrue(any("row count" in e for e in errors))

    def test_non_numeric_fields_compare_exactly(self):
        errors = golden_check.diff_tables([["greedy"]], [["hilbert"]], 0.5)
        self.assertEqual(len(errors), 1)
        self.assertIn("'greedy'", errors[0])

    def test_numeric_vs_text_is_a_mismatch(self):
        errors = golden_check.diff_tables([["1.0"]], [["n/a"]], 0.5)
        self.assertEqual(len(errors), 1)


class NormalizeTest(unittest.TestCase):
    def test_geometric_mean_normalization(self):
        norm = bench_check.normalize({"a": 100.0, "b": 400.0})
        self.assertAlmostEqual(norm["a"], 0.5)
        self.assertAlmostEqual(norm["b"], 2.0)

    def test_uniform_slowdown_cancels(self):
        fast = bench_check.normalize({"a": 10.0, "b": 40.0})
        slow = bench_check.normalize({"a": 30.0, "b": 120.0})
        for name in fast:
            self.assertAlmostEqual(fast[name], slow[name])


class LoadBaselineTest(unittest.TestCase):
    def _write(self, text):
        f = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False)
        self.addCleanup(os.unlink, f.name)
        f.write(text)
        f.close()
        return f.name

    def test_valid_baseline(self):
        path = self._write('{"bench_amr": {"BM_Step": 1.0}}')
        data, err = bench_check.load_baseline(path)
        self.assertIsNone(err)
        self.assertEqual(data["bench_amr"]["BM_Step"], 1.0)

    def test_truncated_json_is_an_error_not_a_traceback(self):
        path = self._write('{"bench_amr": {"BM_Step": 1.')
        data, err = bench_check.load_baseline(path)
        self.assertIsNone(data)
        self.assertIn("malformed baseline", err)
        self.assertIn("--update-baseline", err)

    def test_wrong_shape_rejected(self):
        path = self._write('["not", "a", "mapping"]')
        data, err = bench_check.load_baseline(path)
        self.assertIsNone(data)
        self.assertIn("malformed baseline", err)

    def test_wrong_nested_shape_rejected(self):
        path = self._write('{"bench_amr": 1.0}')
        data, err = bench_check.load_baseline(path)
        self.assertIsNone(data)
        self.assertIn("malformed baseline", err)

    def test_missing_file_is_an_error(self):
        data, err = bench_check.load_baseline(
            os.path.join(tempfile.gettempdir(), "ssamr-nope.json"))
        self.assertIsNone(data)
        self.assertIn("cannot read baseline", err)


class GateTest(unittest.TestCase):
    @staticmethod
    def _report(normalized):
        return {"binaries": {"bench_amr": {"normalized": normalized}}}

    def test_within_threshold_passes(self):
        failures = bench_check.gate(
            self._report({"BM_Step": 1.10}), {"bench_amr": {"BM_Step": 1.0}},
            0.15, out=io.StringIO())
        self.assertEqual(failures, [])

    def test_beyond_threshold_fails(self):
        failures = bench_check.gate(
            self._report({"BM_Step": 1.20}), {"bench_amr": {"BM_Step": 1.0}},
            0.15, out=io.StringIO())
        self.assertEqual(len(failures), 1)
        binary, name, ratio = failures[0]
        self.assertEqual((binary, name), ("bench_amr", "BM_Step"))
        self.assertAlmostEqual(ratio, 1.20)

    def test_new_benchmark_is_announced_not_failed(self):
        out = io.StringIO()
        failures = bench_check.gate(
            self._report({"BM_New": 1.0}), {"bench_amr": {}}, 0.15, out=out)
        self.assertEqual(failures, [])
        self.assertIn("new benchmark", out.getvalue())

    def test_speedup_never_fails(self):
        failures = bench_check.gate(
            self._report({"BM_Step": 0.5}), {"bench_amr": {"BM_Step": 1.0}},
            0.15, out=io.StringIO())
        self.assertEqual(failures, [])


if __name__ == "__main__":
    unittest.main(argv=[sys.argv[0], "-v"])

#!/usr/bin/env python3
"""End-to-end check of the discrete-event execution model and its
Chrome-trace export.

Runs one experiment driver at a small trial count with
SSAMR_EXEC_MODEL=event and SSAMR_TRACE_JSON pointing at a scratch file,
then validates the exported trace:

  * the file is valid JSON in the trace-event "JSON object format"
    (a traceEvents array plus otherData);
  * every "X" event has finite, non-negative ts/dur and a pid/tid;
  * thread-name metadata covers every rank lane plus the monitor lane;
  * per-lane events are non-overlapping in time (each lane is a single
    virtual timeline);
  * the run spans a positive duration.

The same scenario is also run under the default BSP model so the check
fails loudly if either model stops running end-to-end.

Usage:
  trace_check.py --driver build/bench/exp_fig7_table1 [--iters 10]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def run_driver(driver, iters, results_dir, model, trace_path=None):
    env = dict(os.environ)
    env["SSAMR_EXP_ITERS"] = str(iters)
    env["SSAMR_RESULTS_DIR"] = results_dir
    env["SSAMR_EXEC_MODEL"] = model
    if trace_path is not None:
        env["SSAMR_TRACE_JSON"] = trace_path
    else:
        env.pop("SSAMR_TRACE_JSON", None)
    proc = subprocess.run(
        [driver], env=env, stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        raise SystemExit(
            f"driver failed under model '{model}' "
            f"(exit {proc.returncode})")
    return proc.stdout


def check_trace(path):
    errors = []
    with open(path) as f:
        doc = json.load(f)  # raises on malformed JSON

    if "traceEvents" not in doc:
        raise SystemExit("trace has no traceEvents array")
    events = doc["traceEvents"]
    other = doc.get("otherData", {})
    if other.get("model") != "event":
        errors.append(f"otherData.model = {other.get('model')!r}, "
                      "expected 'event'")
    ranks = other.get("ranks", 0)
    if not isinstance(ranks, int) or ranks <= 0:
        errors.append(f"otherData.ranks = {ranks!r}, expected positive int")

    named_lanes = set()
    lanes = {}
    for e in events:
        if e.get("ph") == "M":
            if e.get("name") == "thread_name":
                named_lanes.add(e.get("tid"))
            continue
        if e.get("ph") != "X":
            errors.append(f"unexpected event phase {e.get('ph')!r}")
            continue
        ts, dur = e.get("ts"), e.get("dur")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"bad ts {ts!r} in {e.get('name')}")
            continue
        if not isinstance(dur, (int, float)) or dur < 0:
            errors.append(f"bad dur {dur!r} in {e.get('name')}")
            continue
        if "pid" not in e or "tid" not in e:
            errors.append(f"event without pid/tid: {e.get('name')}")
            continue
        lanes.setdefault(e["tid"], []).append((ts, ts + dur))

    for k in range(ranks):
        if k not in named_lanes:
            errors.append(f"rank lane {k} has no thread_name metadata")
    if ranks not in named_lanes:
        errors.append("monitor lane has no thread_name metadata")

    if not lanes:
        errors.append("no complete ('X') events in the trace")
    span_end = 0.0
    for tid, intervals in lanes.items():
        intervals.sort()
        span_end = max(span_end, intervals[-1][1])
        for (a0, a1), (b0, b1) in zip(intervals, intervals[1:]):
            if b0 < a1 - 1e-6:  # µs slack for float printing
                errors.append(
                    f"lane {tid}: overlapping events "
                    f"[{a0}, {a1}] and [{b0}, {b1}]")
                break
    if span_end <= 0:
        errors.append("trace spans no time")
    return errors


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--driver", required=True)
    ap.add_argument("--iters", type=int, default=10)
    args = ap.parse_args()

    with tempfile.TemporaryDirectory(prefix="ssamr-trace-") as tmp:
        trace_path = os.path.join(tmp, "trace.json")
        # Both execution models must run the scenario end to end.
        run_driver(args.driver, args.iters, tmp, "bsp")
        out = run_driver(args.driver, args.iters, tmp, "event",
                         trace_path)
        if "execution model: event" not in out:
            raise SystemExit("driver did not report the event model")
        if not os.path.exists(trace_path):
            raise SystemExit("driver did not write SSAMR_TRACE_JSON")
        errors = check_trace(trace_path)

    if errors:
        sys.stderr.write("trace check FAILED:\n")
        for e in errors:
            sys.stderr.write(f"  {e}\n")
        return 1
    print(f"trace check OK ({args.driver}, {args.iters} iterations)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
